// Undirected simple graph with a two-phase representation.
//
// One representation serves both the conflict graph G over users and the
// extended conflict graph H over (user, channel) virtual vertices.
//
// Build phase: edges accumulate in per-vertex sorted adjacency vectors.
// Read phase: `finalize()` packs the adjacency into a flat CSR layout
// (`offsets_` / `edges_`) so neighbor iteration is one contiguous span, plus
// one of two packed bitset forms behind the same API:
//
//   - n <= kAdjacencyMatrixLimit: a dense bitset adjacency matrix (n^2
//     bits), so `has_edge` is a single bit test and solvers gather local
//     adjacency rows with word-wide masks over the full column range;
//   - n >  kAdjacencyMatrixLimit: sharded sparse rows — per vertex, only
//     the *nonzero* 64-column blocks of its matrix row, stored as parallel
//     (block index, word) CSR arrays. `has_edge` is a binary search over
//     the row's O(deg) blocks plus a bit test, and solvers gather adjacency
//     by masking each stored block against a candidate bitset, so the hot
//     paths keep word-wide semantics at any n with O(V + E) memory instead
//     of O(n^2) bits.
//
// All graph factories in the library finalize before returning; an
// unfinalized graph still answers every query through the build-phase
// vectors, just slower. See src/graph/README.md for the memory/complexity
// table and the representation-selection rule.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace mhca {

/// Undirected simple graph on vertices 0..size()-1.
///
/// Neighbor lists are sorted ascending in both phases, so `neighbors()` is
/// ordered and `has_edge` is O(1) (bitset) or O(log deg) (binary search).
/// Vertices and edges are added once during construction; the structure is
/// immutable after `finalize()` by convention (all algorithms take
/// `const Graph&`). Calling `add_edge` on a finalized graph reopens the
/// build phase (dropping the packed structure) — safe, but wasteful if done
/// repeatedly.
class Graph {
 public:
  /// Densest n for which `finalize()` builds the dense bitset adjacency
  /// matrix (n^2 bits; 8192 vertices = 8 MiB — small beside the CSR
  /// arrays). Larger graphs get sharded sparse rows instead (O(V + E)
  /// memory); see the header comment for the trade-off.
  static constexpr int kAdjacencyMatrixLimit = 8192;

  Graph() = default;
  explicit Graph(int n)
      : n_(n), adj_(static_cast<std::size_t>(n)) {}

  int size() const { return n_; }

  /// Add an undirected edge {u, v}. Self-loops and duplicates are rejected
  /// (duplicates silently ignored so generators can be sloppy).
  void add_edge(int u, int v);

  /// Pack the adjacency into CSR (and, for small n, the bitset matrix) and
  /// release the build-phase vectors. Idempotent; O(V + E).
  void finalize();

  /// Incrementally patch a *finalized* graph: insert `added` edges and
  /// delete `removed` edges without reopening the build phase. The bitset
  /// matrix is patched bit by bit (O(1) per edge); the CSR arrays are
  /// rewritten in one merge pass over the old rows (O(V + E + Δ log Δ) with
  /// memcpy-level constants — far below a definalize()/finalize() cycle,
  /// which re-materializes every per-vertex adjacency vector). Every added
  /// edge must be absent and every removed edge present (asserted), so a
  /// delta and its inverse round-trip exactly; the result is byte-identical
  /// to rebuilding the graph from the new edge set (see
  /// tests/dynamics_differential_test.cc).
  void apply_delta(std::span<const std::pair<int, int>> added,
                   std::span<const std::pair<int, int>> removed);

  bool finalized() const { return !offsets_.empty(); }

  bool has_edge(int u, int v) const;

  /// Sorted neighbor ids of v. A contiguous CSR span once finalized.
  std::span<const int> neighbors(int v) const {
    if (finalized()) {
      const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
      const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
      return {edges_.data() + b, e - b};
    }
    const auto& a = adj_[static_cast<std::size_t>(v)];
    return {a.data(), a.size()};
  }

  int degree(int v) const {
    return static_cast<int>(neighbors(v).size());
  }

  /// True once `finalize()` has built the packed adjacency matrix
  /// (only for graphs with size() <= kAdjacencyMatrixLimit).
  bool has_adjacency_matrix() const { return !bits_.empty(); }

  /// Words per adjacency-matrix row (= ceil(size()/64)); 0 if no matrix.
  std::size_t row_blocks() const { return row_blocks_; }

  /// Row v of the packed adjacency matrix: bit u set iff {v, u} is an edge.
  std::span<const std::uint64_t> adjacency_row(int v) const {
    return {bits_.data() + static_cast<std::size_t>(v) * row_blocks_,
            row_blocks_};
  }

  /// True once `finalize()` has built the sharded sparse rows (only for
  /// graphs with size() > kAdjacencyMatrixLimit). Mutually exclusive with
  /// `has_adjacency_matrix()`.
  bool has_sparse_rows() const { return !srow_offsets_.empty(); }

  /// Ascending indices of the nonzero 64-column blocks of row v. Aligned
  /// with `sparse_row_words(v)`: block b of the span covers columns
  /// [64*b, 64*b+64) and its word has bit (u % 64) set iff {v, u} is an
  /// edge with u / 64 == b.
  std::span<const int> sparse_row_blocks(int v) const {
    const auto b = static_cast<std::size_t>(srow_offsets_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(srow_offsets_[static_cast<std::size_t>(v) + 1]);
    return {srow_blocks_.data() + b, e - b};
  }

  /// The words of row v's nonzero blocks; aligned with sparse_row_blocks.
  std::span<const std::uint64_t> sparse_row_words(int v) const {
    const auto b = static_cast<std::size_t>(srow_offsets_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(srow_offsets_[static_cast<std::size_t>(v) + 1]);
    return {srow_words_.data() + b, e - b};
  }

  std::int64_t num_edges() const;
  double average_degree() const;
  int max_degree() const;

  /// True if every pair of vertices is joined by a path (empty graph: true).
  bool is_connected() const;

  /// True if `vs` has no duplicate vertex and no two of its vertices are
  /// adjacent. O(|vs| + Σ deg(v)) single-pass neighbor-mark check over a
  /// reusable (thread-local, epoch-stamped) scratch bitmap — cheap enough
  /// to validate every decision's winner set on the hot path (it runs
  /// inside the engine's end-of-run assert and the net runtime's conflict
  /// detector; the old pairwise check was O(|vs|²) `has_edge` probes and
  /// dominated whole 50k-vertex decisions).
  bool is_independent_set(std::span<const int> vs) const;

  /// The quadratic pairwise reference check (every pair probed via
  /// `has_edge`). Same verdict as `is_independent_set` on every input —
  /// kept only as the fuzz oracle (tests/graph_property_test.cc); never
  /// call it on a hot path.
  bool is_independent_set_pairwise(std::span<const int> vs) const;

 private:
  /// Reopen the build phase: reconstruct adjacency vectors from the CSR and
  /// drop the packed structure.
  void definalize();

  /// Rebuild the sharded sparse rows from the (already current) CSR arrays.
  void build_sparse_rows();

  /// Append row v's nonzero blocks, derived from its sorted CSR neighbor
  /// row, onto the sparse-row output arrays.
  void append_sparse_row(int v, std::vector<int>& blocks,
                         std::vector<std::uint64_t>& words) const;

  int n_ = 0;

  // Build phase.
  std::vector<std::vector<int>> adj_;

  // Read phase (empty until finalize()).
  std::vector<std::int64_t> offsets_;   ///< size n_+1.
  std::vector<int> edges_;              ///< size 2|E|, sorted per row.
  std::vector<std::uint64_t> bits_;     ///< n_ rows of row_blocks_ words.
  std::size_t row_blocks_ = 0;
  // Sharded sparse rows (only when n_ > kAdjacencyMatrixLimit).
  std::vector<std::int64_t> srow_offsets_;  ///< size n_+1.
  std::vector<int> srow_blocks_;            ///< Nonzero block ids per row.
  std::vector<std::uint64_t> srow_words_;   ///< Aligned block words.
};

}  // namespace mhca
