// Undirected simple graph with sorted adjacency lists.
//
// One representation serves both the conflict graph G over users and the
// extended conflict graph H over (user, channel) virtual vertices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mhca {

/// Undirected simple graph on vertices 0..size()-1.
///
/// Adjacency lists are kept sorted so `has_edge` is O(log deg). Vertices and
/// edges are added once during construction; the structure is immutable
/// afterwards by convention (all algorithms take `const Graph&`).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int n) : adj_(static_cast<std::size_t>(n)) {}

  int size() const { return static_cast<int>(adj_.size()); }

  /// Add an undirected edge {u, v}. Self-loops and duplicates are rejected
  /// (duplicates silently ignored so generators can be sloppy).
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const;

  const std::vector<int>& neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  int degree(int v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  std::int64_t num_edges() const;
  double average_degree() const;
  int max_degree() const;

  /// True if every pair of vertices is joined by a path (empty graph: true).
  bool is_connected() const;

  /// True if no two vertices in `vs` are adjacent.
  bool is_independent_set(std::span<const int> vs) const;

 private:
  std::vector<std::vector<int>> adj_;
};

}  // namespace mhca
