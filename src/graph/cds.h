// Connected dominating set (CDS) backbone.
//
// Paper §IV-C: naive sequential weight broadcast in a (2r+1)-hop
// neighborhood costs O((2r+1)^3) mini-timeslots; pipelining the broadcast
// over a connected-dominating-set backbone (refs [18]-[20]) reduces it to
// O((2r+1)^2). This module provides the backbone construction plus the
// predicates needed to verify it, and a pipelined-broadcast timeslot
// estimator used for comparison.
//
// The construction is correctness-first (MIS dominators + shortest-path
// connectors), not size-optimal; see `simple_connected_dominating_set`.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace mhca {

/// Every vertex is in `ds` or adjacent to a member of `ds`.
bool is_dominating_set(const Graph& g, std::span<const int> ds);

/// The subgraph induced by `vs` is connected (empty/singleton: true).
bool induces_connected_subgraph(const Graph& g, std::span<const int> vs);

/// Greedy maximal independent set in ascending-id order (dominators).
std::vector<int> greedy_mis(const Graph& g);

/// Build a connected dominating set of a *connected* graph: greedy-MIS
/// dominators plus BFS-tree connectors (walk each dominator's parent chain
/// into the growing backbone). Returns a sorted vertex list that satisfies
/// both predicates above. Asserts if g is not connected.
std::vector<int> simple_connected_dominating_set(const Graph& g);

/// Mini-timeslots to flood one message from `origin` to every vertex within
/// `ttl` hops when relays are restricted to the CDS backbone and
/// transmissions pipeline one hop per timeslot: the eccentricity of the
/// restricted flood (or ttl if the plain flood is faster). This is the
/// quantity the paper's O((2r+1)^2) WB argument bounds.
int pipelined_broadcast_timeslots(const Graph& g, std::span<const int> cds,
                                  int origin, int ttl);

// Brace-initializer conveniences (spans cannot bind to {…} directly).
inline bool is_dominating_set(const Graph& g, std::initializer_list<int> ds) {
  return is_dominating_set(g, std::span<const int>(ds.begin(), ds.size()));
}
inline bool induces_connected_subgraph(const Graph& g,
                                       std::initializer_list<int> vs) {
  return induces_connected_subgraph(
      g, std::span<const int>(vs.begin(), vs.size()));
}

}  // namespace mhca
