#include "graph/induced.h"

#include <algorithm>
#include <unordered_map>

#include "util/assert.h"

namespace mhca {

std::vector<int> InducedSubgraph::lift(std::span<const int> local) const {
  std::vector<int> out;
  out.reserve(local.size());
  for (int v : local) {
    MHCA_ASSERT(v >= 0 && static_cast<std::size_t>(v) < to_parent.size(),
                "local vertex out of range");
    out.push_back(to_parent[static_cast<std::size_t>(v)]);
  }
  return out;
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const int> vertices) {
  InducedSubgraph sub;
  sub.to_parent.assign(vertices.begin(), vertices.end());
  std::sort(sub.to_parent.begin(), sub.to_parent.end());
  MHCA_ASSERT(std::adjacent_find(sub.to_parent.begin(), sub.to_parent.end()) ==
                  sub.to_parent.end(),
              "duplicate vertices in induced subgraph");
  sub.graph = Graph(static_cast<int>(sub.to_parent.size()));
  std::unordered_map<int, int> local;
  local.reserve(sub.to_parent.size() * 2);
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
    local.emplace(sub.to_parent[i], static_cast<int>(i));
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
    const int v = sub.to_parent[i];
    MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
    for (int u : g.neighbors(v)) {
      auto it = local.find(u);
      if (it != local.end() && it->second > static_cast<int>(i))
        sub.graph.add_edge(static_cast<int>(i), it->second);
    }
  }
  sub.graph.finalize();
  return sub;
}

}  // namespace mhca
