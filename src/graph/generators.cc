#include "graph/generators.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace mhca {

ConflictGraph random_geometric(int n, double side, double radius, Rng& rng,
                               bool force_connected, int max_attempts) {
  MHCA_ASSERT(n >= 1, "need at least one node");
  MHCA_ASSERT(side > 0.0 && radius > 0.0, "side and radius must be positive");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<Point> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      pts.push_back(Point{rng.uniform(0.0, side), rng.uniform(0.0, side)});
    ConflictGraph cg = ConflictGraph::from_positions(std::move(pts), radius);
    if (!force_connected || cg.graph().is_connected()) return cg;
  }
  MHCA_ASSERT(false, "failed to sample a connected random geometric graph; "
                     "increase radius or node count");
}

ConflictGraph random_geometric_avg_degree(int n, double avg_degree, Rng& rng,
                                          bool force_connected) {
  MHCA_ASSERT(avg_degree > 0.0, "average degree must be positive");
  const double side = std::sqrt(static_cast<double>(n));
  // E[deg] ~= (n-1) * pi r^2 / side^2  =>  r = side * sqrt(d / (pi (n-1))).
  const double denom = std::numbers::pi * static_cast<double>(std::max(1, n - 1));
  const double radius = side * std::sqrt(avg_degree / denom);
  return random_geometric(n, side, radius, rng, force_connected);
}

ConflictGraph linear_network(int n) {
  MHCA_ASSERT(n >= 1, "need at least one node");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back(Point{static_cast<double>(i), 0.0});
  return ConflictGraph::from_positions(std::move(pts), 1.0);
}

ConflictGraph grid_network(int rows, int cols) {
  MHCA_ASSERT(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      pts.push_back(Point{static_cast<double>(c), static_cast<double>(r)});
  return ConflictGraph::from_positions(std::move(pts), 1.0);
}

ConflictGraph complete_network(int n) {
  MHCA_ASSERT(n >= 1, "need at least one node");
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return ConflictGraph::from_edges(n, edges);
}

ConflictGraph erdos_renyi(int n, double p, Rng& rng) {
  MHCA_ASSERT(n >= 1, "need at least one node");
  MHCA_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.bernoulli(p)) edges.emplace_back(i, j);
  return ConflictGraph::from_edges(n, edges);
}

}  // namespace mhca
