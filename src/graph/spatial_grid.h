// Uniform spatial grid over 2-D points for unit-disk neighbor queries.
//
// The unit-disk constructions in this repo — ConflictGraph::from_positions,
// the waypoint mobility model's per-slot edge re-derivation, the
// primary-user region coverage test — all ask the same question: which
// pairs/points lie within Euclidean distance d of each other / of a center?
// The naive answer is O(n^2) distance tests per call, which is exactly the
// per-slot wall the dynamics layer hits at large n (ROADMAP). This grid
// buckets points into square cells of side >= the query radius, so a
// radius query inspects only the 3x3 cell neighborhood of its center and a
// pair sweep inspects only the forward half of each cell's neighborhood:
// O(n * k) total for k average neighbors-per-cell-window, with a counting-
// sort build that is O(n + cells) per rebuild (mobility rebuilds it every
// slot; reuse one instance to keep the allocations).
//
// Determinism: enumeration visits cells in row-major order and points in
// input order within a cell, so the emitted sequence is a pure function of
// the input points — callers that need globally sorted pairs sort the
// (small) result. Equality with the O(n^2) sweep is fuzzed in
// tests/graph_property_test.cc.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/geometry.h"

namespace mhca {

class SpatialGrid {
 public:
  SpatialGrid() = default;

  /// Build over `pts` with cells of side max(cell_size, tiny). Cell side
  /// must be >= the radius of later queries for correctness (asserted only
  /// by construction: queries clamp to the 3x3 window).
  SpatialGrid(const std::vector<Point>& pts, double cell_size) {
    rebuild(pts, cell_size);
  }

  /// Re-bucket (same or new points); reuses all allocations.
  void rebuild(const std::vector<Point>& pts, double cell_size) {
    const int n = static_cast<int>(pts.size());
    cell_ = std::max(cell_size, 1e-12);
    min_x_ = 0.0;
    min_y_ = 0.0;
    cols_ = rows_ = 1;
    if (n > 0) {
      double max_x = pts[0].x, max_y = pts[0].y;
      min_x_ = pts[0].x;
      min_y_ = pts[0].y;
      for (const Point& p : pts) {
        min_x_ = std::min(min_x_, p.x);
        min_y_ = std::min(min_y_, p.y);
        max_x = std::max(max_x, p.x);
        max_y = std::max(max_y, p.y);
      }
      // Bound the bucket array: a radius far below the arena scale would
      // otherwise allocate quadratically many empty cells (and overflow the
      // int cell counts — the division is clamped before the cast for that
      // reason). Growing the cell side only widens the candidate window —
      // never loses a neighbor.
      const auto cells_along = [](double spread, double cell) {
        const double c = spread / cell;
        return c >= 1e9 ? std::int64_t{1} << 31
                        : 1 + static_cast<std::int64_t>(c);
      };
      std::int64_t cols = cells_along(max_x - min_x_, cell_);
      std::int64_t rows = cells_along(max_y - min_y_, cell_);
      while (cols * rows >
             std::max<std::int64_t>(64, 4 * static_cast<std::int64_t>(n))) {
        cell_ *= 2.0;
        cols = cells_along(max_x - min_x_, cell_);
        rows = cells_along(max_y - min_y_, cell_);
      }
      cols_ = static_cast<int>(cols);
      rows_ = static_cast<int>(rows);
    }
    const auto cells = static_cast<std::size_t>(cols_) *
                       static_cast<std::size_t>(rows_);
    // Counting sort into CSR: cell -> contiguous point-id range.
    start_.assign(cells + 1, 0);
    for (int i = 0; i < n; ++i) ++start_[static_cast<std::size_t>(cell_of(pts[static_cast<std::size_t>(i)])) + 1];
    for (std::size_t c = 0; c < cells; ++c) start_[c + 1] += start_[c];
    ids_.resize(static_cast<std::size_t>(n));
    fill_.assign(cells, 0);
    for (int i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(cell_of(pts[static_cast<std::size_t>(i)]));
      ids_[static_cast<std::size_t>(start_[c]) +
           static_cast<std::size_t>(fill_[c]++)] = i;
    }
  }

  /// Call f(i, j) with i < j for every unordered pair at distance <=
  /// radius. Requires radius <= the build cell size. Each pair is visited
  /// exactly once (forward half-window sweep).
  template <typename F>
  void for_each_pair_within(const std::vector<Point>& pts, double radius,
                            F&& f) const {
    const double r2 = radius * radius;
    // Forward neighbors of cell (cx, cy): itself (intra-cell pairs a < b),
    // east, and the three cells of the next row — every unordered cell
    // pair at Chebyshev distance <= 1 is covered exactly once.
    for (int cy = 0; cy < rows_; ++cy) {
      for (int cx = 0; cx < cols_; ++cx) {
        const auto a_begin = start_[index(cx, cy)];
        const auto a_end = start_[index(cx, cy) + 1];
        for (auto ai = a_begin; ai < a_end; ++ai) {
          const int i = ids_[static_cast<std::size_t>(ai)];
          for (auto aj = ai + 1; aj < a_end; ++aj) {
            const int j = ids_[static_cast<std::size_t>(aj)];
            emit_if_close(pts, i, j, r2, f);
          }
        }
        static constexpr int kForward[4][2] = {{1, 0}, {-1, 1}, {0, 1}, {1, 1}};
        for (const auto& d : kForward) {
          const int nx = cx + d[0], ny = cy + d[1];
          if (nx < 0 || nx >= cols_ || ny >= rows_) continue;
          const auto b_begin = start_[index(nx, ny)];
          const auto b_end = start_[index(nx, ny) + 1];
          for (auto ai = a_begin; ai < a_end; ++ai) {
            const int i = ids_[static_cast<std::size_t>(ai)];
            for (auto bj = b_begin; bj < b_end; ++bj) {
              const int j = ids_[static_cast<std::size_t>(bj)];
              emit_if_close(pts, i, j, r2, f);
            }
          }
        }
      }
    }
  }

  /// Call f(i) for every point at distance <= radius of `center`.
  /// Requires radius <= the build cell size.
  template <typename F>
  void for_each_within(const std::vector<Point>& pts, const Point& center,
                       double radius, F&& f) const {
    const double r2 = radius * radius;
    const int cx = clamped_col(center.x);
    const int cy = clamped_row(center.y);
    for (int ny = std::max(0, cy - 1); ny <= std::min(rows_ - 1, cy + 1);
         ++ny) {
      for (int nx = std::max(0, cx - 1); nx <= std::min(cols_ - 1, cx + 1);
           ++nx) {
        const auto b = start_[index(nx, ny)];
        const auto e = start_[index(nx, ny) + 1];
        for (auto k = b; k < e; ++k) {
          const int i = ids_[static_cast<std::size_t>(k)];
          if (squared_distance(pts[static_cast<std::size_t>(i)], center) <= r2)
            f(i);
        }
      }
    }
  }

  double cell_size() const { return cell_; }

 private:
  template <typename F>
  static void emit_if_close(const std::vector<Point>& pts, int i, int j,
                            double r2, F& f) {
    if (squared_distance(pts[static_cast<std::size_t>(i)],
                         pts[static_cast<std::size_t>(j)]) <= r2) {
      if (i < j)
        f(i, j);
      else
        f(j, i);
    }
  }

  int clamped_col(double x) const {
    const int c = static_cast<int>((x - min_x_) / cell_);
    return std::clamp(c, 0, cols_ - 1);
  }
  int clamped_row(double y) const {
    const int r = static_cast<int>((y - min_y_) / cell_);
    return std::clamp(r, 0, rows_ - 1);
  }
  int cell_of(const Point& p) const {
    return index(clamped_col(p.x), clamped_row(p.y));
  }
  std::size_t index(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(cx);
  }

  double cell_ = 1.0;
  double min_x_ = 0.0, min_y_ = 0.0;
  int cols_ = 1, rows_ = 1;
  std::vector<std::int64_t> start_;  ///< cells+1 CSR offsets.
  std::vector<int> ids_;             ///< Point ids, cell-major.
  std::vector<int> fill_;            ///< Build-time cursor per cell.
};

}  // namespace mhca
