// Greedy vertex coloring and chromatic bounds.
//
// §III of the paper observes that the independence number of the extended
// graph H equals N exactly when the conflict graph G can be colored with at
// most M colors (each color class = a channel). These helpers compute
// constructive upper bounds on χ(G) and the induced full-occupancy channel
// assignment.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace mhca {

/// Greedy coloring in the given vertex order; returns per-vertex colors
/// (0-based). Uses at most max_degree+1 colors.
std::vector<int> greedy_coloring(const Graph& g, std::span<const int> order);

/// Welsh–Powell: greedy coloring in decreasing-degree order.
std::vector<int> welsh_powell_coloring(const Graph& g);

/// Number of distinct colors used by a coloring.
int num_colors(const std::vector<int>& coloring);

/// True iff `coloring` assigns different colors to every edge's endpoints.
bool is_proper_coloring(const Graph& g, std::span<const int> coloring);

}  // namespace mhca
