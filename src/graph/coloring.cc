#include "graph/coloring.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca {

std::vector<int> greedy_coloring(const Graph& g,
                                 std::span<const int> order) {
  MHCA_ASSERT(static_cast<int>(order.size()) == g.size(),
              "order must list every vertex exactly once");
  std::vector<int> color(static_cast<std::size_t>(g.size()), -1);
  std::vector<char> used;
  for (int v : order) {
    MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
    MHCA_ASSERT(color[static_cast<std::size_t>(v)] == -1,
                "vertex repeated in order");
    used.assign(static_cast<std::size_t>(g.degree(v)) + 2, 0);
    for (int u : g.neighbors(v)) {
      const int cu = color[static_cast<std::size_t>(u)];
      if (cu >= 0 && cu < static_cast<int>(used.size()))
        used[static_cast<std::size_t>(cu)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

std::vector<int> welsh_powell_coloring(const Graph& g) {
  std::vector<int> order(static_cast<std::size_t>(g.size()));
  for (int v = 0; v < g.size(); ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  return greedy_coloring(g, order);
}

int num_colors(const std::vector<int>& coloring) {
  int best = -1;
  for (int c : coloring) best = std::max(best, c);
  return best + 1;
}

bool is_proper_coloring(const Graph& g, std::span<const int> coloring) {
  if (static_cast<int>(coloring.size()) != g.size()) return false;
  for (int v = 0; v < g.size(); ++v)
    for (int u : g.neighbors(v))
      if (coloring[static_cast<std::size_t>(u)] ==
          coloring[static_cast<std::size_t>(v)])
        return false;
  return true;
}

}  // namespace mhca
