// 2-D geometry for unit-disk conflict graphs.
#pragma once

#include <cmath>

namespace mhca {

/// Planar point (user location).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double squared_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace mhca
