#include "graph/neighborhood_cache.h"

#include "graph/hop.h"
#include "util/assert.h"

namespace mhca {

NeighborhoodCache::NeighborhoodCache(const Graph& g, int r, bool build_covers)
    : r_(r), size_(g.size()) {
  MHCA_ASSERT(r >= 1, "r must be at least 1");
  const auto n = static_cast<std::size_t>(size_);
  r_offsets_.assign(n + 1, 0);
  e_offsets_.assign(n + 1, 0);

  // One BFS to 2r+1 hops per vertex yields both balls: the r-ball is the
  // distance-<= r subset of the election ball.
  BfsScratch scratch(size_);
  std::vector<int> r_ball;
  std::vector<int> e_ball;
  std::vector<int> clique_of;
  if (build_covers) cover_counts_.assign(n, 0);
  for (int v = 0; v < size_; ++v) {
    scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball, e_ball);
    e_offsets_[static_cast<std::size_t>(v) + 1] =
        e_offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(e_ball.size());
    e_data_.insert(e_data_.end(), e_ball.begin(), e_ball.end());
    r_offsets_[static_cast<std::size_t>(v) + 1] =
        r_offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(r_ball.size());
    r_data_.insert(r_data_.end(), r_ball.begin(), r_ball.end());
    if (build_covers) {
      cover_counts_[static_cast<std::size_t>(v)] =
          build_ball_cover(g, r_ball, clique_of);
      cover_data_.insert(cover_data_.end(), clique_of.begin(),
                         clique_of.end());
    }
  }
}

int NeighborhoodCache::build_ball_cover(const Graph& g,
                                        std::span<const int> ball,
                                        std::vector<int>& clique_of) {
  clique_of.assign(ball.size(), -1);
  // Cliques as (first-member-index, id) chains would save memory, but balls
  // are small; plain member lists keep the placement check obvious.
  std::vector<std::vector<int>> cliques;
  for (std::size_t i = 0; i < ball.size(); ++i) {
    const int v = ball[i];
    bool placed = false;
    for (std::size_t q = 0; q < cliques.size(); ++q) {
      bool all_adjacent = true;
      for (int u : cliques[q]) {
        if (!g.has_edge(v, u)) {
          all_adjacent = false;
          break;
        }
      }
      if (all_adjacent) {
        cliques[q].push_back(v);
        clique_of[i] = static_cast<int>(q);
        placed = true;
        break;
      }
    }
    if (!placed) {
      clique_of[i] = static_cast<int>(cliques.size());
      cliques.push_back({v});
    }
  }
  return static_cast<int>(cliques.size());
}

}  // namespace mhca
