#include "graph/neighborhood_cache.h"

#include "graph/hop.h"
#include "util/assert.h"

namespace mhca {

NeighborhoodCache::NeighborhoodCache(const Graph& g, int r)
    : r_(r), size_(g.size()) {
  MHCA_ASSERT(r >= 1, "r must be at least 1");
  const auto n = static_cast<std::size_t>(size_);
  r_offsets_.assign(n + 1, 0);
  e_offsets_.assign(n + 1, 0);

  // One BFS to 2r+1 hops per vertex yields both balls: the r-ball is the
  // distance-<= r subset of the election ball.
  BfsScratch scratch(size_);
  std::vector<int> r_ball;
  std::vector<int> e_ball;
  for (int v = 0; v < size_; ++v) {
    scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball, e_ball);
    e_offsets_[static_cast<std::size_t>(v) + 1] =
        e_offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(e_ball.size());
    e_data_.insert(e_data_.end(), e_ball.begin(), e_ball.end());
    r_offsets_[static_cast<std::size_t>(v) + 1] =
        r_offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(r_ball.size());
    r_data_.insert(r_data_.end(), r_ball.begin(), r_ball.end());
  }
}

}  // namespace mhca
