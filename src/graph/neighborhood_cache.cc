#include "graph/neighborhood_cache.h"

#include "graph/hop.h"
#include "util/assert.h"

namespace mhca {

NeighborhoodCache::NeighborhoodCache(const Graph& g, int r, bool build_covers)
    : r_(r), size_(g.size()) {
  MHCA_ASSERT(r >= 1, "r must be at least 1");
  const auto n = static_cast<std::size_t>(size_);
  r_offsets_.assign(n + 1, 0);
  e_offsets_.assign(n + 1, 0);

  // One BFS to 2r+1 hops per vertex yields both balls: the r-ball is the
  // distance-<= r subset of the election ball.
  BfsScratch scratch(size_);
  std::vector<int> r_ball;
  std::vector<int> e_ball;
  std::vector<int> clique_of;
  if (build_covers) cover_counts_.assign(n, 0);
  for (int v = 0; v < size_; ++v) {
    scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball, e_ball);
    e_offsets_[static_cast<std::size_t>(v) + 1] =
        e_offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(e_ball.size());
    e_data_.insert(e_data_.end(), e_ball.begin(), e_ball.end());
    r_offsets_[static_cast<std::size_t>(v) + 1] =
        r_offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(r_ball.size());
    r_data_.insert(r_data_.end(), r_ball.begin(), r_ball.end());
    if (build_covers) {
      cover_counts_[static_cast<std::size_t>(v)] =
          build_ball_cover(g, r_ball, clique_of);
      cover_data_.insert(cover_data_.end(), clique_of.begin(),
                         clique_of.end());
    }
  }
}

void NeighborhoodCache::apply_delta(const Graph& g,
                                    std::span<const int> touched) {
  MHCA_ASSERT(built(), "apply_delta on an unbuilt cache");
  MHCA_ASSERT(g.size() == size_, "graph size changed under the cache");
  if (touched.empty()) {
    last_invalidated_ = 0;
    return;
  }

  // Affected = within 2r+1 hops of a touched vertex, before OR after the
  // change. "Before" reads the stored election balls of the touched
  // vertices (d(u,v) = d(v,u), so v ∈ old-ball(t) ⟺ t ∈ old-ball(v));
  // "after" is one multi-source BFS on the already-patched graph.
  std::vector<char> affected(static_cast<std::size_t>(size_), 0);
  for (int t : touched) {
    MHCA_ASSERT(t >= 0 && t < size_, "touched vertex out of range");
    for (int v : election_ball(t)) affected[static_cast<std::size_t>(v)] = 1;
  }
  BfsScratch scratch(size_);
  std::vector<int> reach;
  scratch.multi_source_k_hop(g, touched, 2 * r_ + 1, reach);
  for (int v : reach) affected[static_cast<std::size_t>(v)] = 1;

  const auto n = static_cast<std::size_t>(size_);
  const bool covers = has_covers();
  std::vector<std::int64_t> new_r_off(n + 1, 0), new_e_off(n + 1, 0);
  std::vector<int> new_r_data, new_e_data, new_cover_data;
  new_r_data.reserve(r_data_.size());
  new_e_data.reserve(e_data_.size());
  if (covers) new_cover_data.reserve(cover_data_.size());

  std::vector<int> r_ball_buf, e_ball_buf, clique_of;
  int invalidated = 0;
  for (int v = 0; v < size_; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (affected[vi]) {
      ++invalidated;
      scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball_buf,
                                      e_ball_buf);
      new_r_data.insert(new_r_data.end(), r_ball_buf.begin(),
                        r_ball_buf.end());
      new_e_data.insert(new_e_data.end(), e_ball_buf.begin(),
                        e_ball_buf.end());
      if (covers) {
        cover_counts_[vi] = build_ball_cover(g, r_ball_buf, clique_of);
        new_cover_data.insert(new_cover_data.end(), clique_of.begin(),
                              clique_of.end());
      }
    } else {
      const auto rb = r_ball(v);
      const auto eb = election_ball(v);
      new_r_data.insert(new_r_data.end(), rb.begin(), rb.end());
      new_e_data.insert(new_e_data.end(), eb.begin(), eb.end());
      if (covers) {
        const auto cv = r_ball_cover(v);
        new_cover_data.insert(new_cover_data.end(), cv.begin(), cv.end());
      }
    }
    new_r_off[vi + 1] = static_cast<std::int64_t>(new_r_data.size());
    new_e_off[vi + 1] = static_cast<std::int64_t>(new_e_data.size());
  }
  r_offsets_ = std::move(new_r_off);
  r_data_ = std::move(new_r_data);
  e_offsets_ = std::move(new_e_off);
  e_data_ = std::move(new_e_data);
  if (covers) cover_data_ = std::move(new_cover_data);
  last_invalidated_ = invalidated;
}

int NeighborhoodCache::build_ball_cover(const Graph& g,
                                        std::span<const int> ball,
                                        std::vector<int>& clique_of) {
  clique_of.assign(ball.size(), -1);
  // Cliques as (first-member-index, id) chains would save memory, but balls
  // are small; plain member lists keep the placement check obvious.
  std::vector<std::vector<int>> cliques;
  for (std::size_t i = 0; i < ball.size(); ++i) {
    const int v = ball[i];
    bool placed = false;
    for (std::size_t q = 0; q < cliques.size(); ++q) {
      bool all_adjacent = true;
      for (int u : cliques[q]) {
        if (!g.has_edge(v, u)) {
          all_adjacent = false;
          break;
        }
      }
      if (all_adjacent) {
        cliques[q].push_back(v);
        clique_of[i] = static_cast<int>(q);
        placed = true;
        break;
      }
    }
    if (!placed) {
      clique_of[i] = static_cast<int>(cliques.size());
      cliques.push_back({v});
    }
  }
  return static_cast<int>(cliques.size());
}

}  // namespace mhca
