#include "graph/neighborhood_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "graph/hop.h"
#include "util/assert.h"
#include "util/parallel.h"

namespace mhca {

int NeighborhoodCache::build_workers(int parallelism, int n) {
  if (parallelism == 0) {
    if (const char* env = std::getenv("MHCA_CACHE_BUILD_WORKERS"))
      parallelism = std::atoi(env);
  }
  if (parallelism <= 0) {
    parallelism = static_cast<int>(std::thread::hardware_concurrency());
    if (parallelism <= 0) parallelism = 1;
  }
  return std::min(parallelism, std::max(n, 1));
}

NeighborhoodCache::EballTier NeighborhoodCache::select_eball_tier(int n) {
  if (const char* env = std::getenv("MHCA_EBALL_TIER")) {
    if (std::strcmp(env, "explicit") == 0) return EballTier::kExplicit;
    if (std::strcmp(env, "implicit") == 0) return EballTier::kImplicit;
  }
  return n <= Graph::kAdjacencyMatrixLimit ? EballTier::kExplicit
                                           : EballTier::kImplicit;
}

NeighborhoodCache::NeighborhoodCache(const Graph& g, int r, bool build_covers,
                                     int parallelism)
    : r_(r), size_(g.size()), tier_(select_eball_tier(g.size())) {
  MHCA_ASSERT(r >= 1, "r must be at least 1");
  const auto n = static_cast<std::size_t>(size_);
  const bool implicit = tier_ == EballTier::kImplicit;
  r_offsets_.assign(n + 1, 0);
  if (implicit)
    e_sizes_.assign(n, 0);
  else
    e_offsets_.assign(n + 1, 0);
  if (build_covers) cover_counts_.assign(n, 0);

  const int workers = build_workers(parallelism, size_);
  if (workers <= 1) {
    // Serial single-pass build: one BFS to 2r+1 hops per vertex yields both
    // balls (the r-ball is the distance-<= r subset of the election ball),
    // appended as they are produced. The implicit tier keeps only the
    // election ball's size.
    BfsScratch scratch(size_);
    std::vector<int> r_ball;
    std::vector<int> e_ball;
    std::vector<int> clique_of;
    for (int v = 0; v < size_; ++v) {
      scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball, e_ball);
      if (implicit) {
        e_sizes_[static_cast<std::size_t>(v)] =
            static_cast<int>(e_ball.size());
      } else {
        e_offsets_[static_cast<std::size_t>(v) + 1] =
            e_offsets_[static_cast<std::size_t>(v)] +
            static_cast<std::int64_t>(e_ball.size());
        e_data_.insert(e_data_.end(), e_ball.begin(), e_ball.end());
      }
      r_offsets_[static_cast<std::size_t>(v) + 1] =
          r_offsets_[static_cast<std::size_t>(v)] +
          static_cast<std::int64_t>(r_ball.size());
      r_data_.insert(r_data_.end(), r_ball.begin(), r_ball.end());
      if (build_covers) {
        cover_counts_[static_cast<std::size_t>(v)] =
            build_ball_cover(g, r_ball, clique_of);
        cover_data_.insert(cover_data_.end(), clique_of.begin(),
                           clique_of.end());
      }
    }
    return;
  }

  // Parallel count-then-fill build. Each worker owns a contiguous vertex
  // slice; per-vertex output is a pure function of (g, v, r), so the filled
  // arrays are byte-identical to the serial build at any worker count
  // (tests/large_n_test.cc pins this). Pass 1 runs a size-only BFS per
  // vertex (no sort, no materialization) into the disjoint offset slots;
  // pass 2, after a serial prefix sum, re-runs the BFS and writes each ball
  // into its final CSR span — two BFS sweeps, but no transient second copy
  // of the multi-hundred-MB ball arrays. On the implicit tier the e-ball
  // count lands directly in e_sizes_ and the fill pass only cross-checks
  // it against the re-enumerated ball.
  std::vector<BfsScratch> scratches(static_cast<std::size_t>(workers));
  const auto slice = [&](int j) {
    const std::int64_t lo = static_cast<std::int64_t>(j) * size_ / workers;
    const std::int64_t hi =
        static_cast<std::int64_t>(j + 1) * size_ / workers;
    return std::pair<int, int>{static_cast<int>(lo), static_cast<int>(hi)};
  };
  parallel_run(
      workers,
      [&](int j) {
        auto& scratch = scratches[static_cast<std::size_t>(j)];
        scratch.resize(size_);
        const auto [lo, hi] = slice(j);
        for (int v = lo; v < hi; ++v) {
          std::int64_t e_size = 0;
          scratch.two_radius_sizes(g, v, r_, 2 * r_ + 1,
                                   r_offsets_[static_cast<std::size_t>(v) + 1],
                                   e_size);
          if (implicit)
            e_sizes_[static_cast<std::size_t>(v)] = static_cast<int>(e_size);
          else
            e_offsets_[static_cast<std::size_t>(v) + 1] = e_size;
        }
      },
      workers);
  for (std::size_t v = 0; v < n; ++v) {
    r_offsets_[v + 1] += r_offsets_[v];
    if (!implicit) e_offsets_[v + 1] += e_offsets_[v];
  }
  r_data_.resize(static_cast<std::size_t>(r_offsets_[n]));
  if (!implicit) e_data_.resize(static_cast<std::size_t>(e_offsets_[n]));
  if (build_covers) cover_data_.resize(r_data_.size());
  parallel_run(
      workers,
      [&](int j) {
        auto& scratch = scratches[static_cast<std::size_t>(j)];
        std::vector<int> r_ball;
        std::vector<int> e_ball;
        std::vector<int> clique_of;
        const auto [lo, hi] = slice(j);
        for (int v = lo; v < hi; ++v) {
          const auto vi = static_cast<std::size_t>(v);
          scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball,
                                          e_ball);
          const std::int64_t e_counted =
              implicit ? e_sizes_[vi] : e_offsets_[vi + 1] - e_offsets_[vi];
          MHCA_ASSERT(static_cast<std::int64_t>(r_ball.size()) ==
                              r_offsets_[vi + 1] - r_offsets_[vi] &&
                          static_cast<std::int64_t>(e_ball.size()) ==
                              e_counted,
                      "count pass disagrees with fill pass");
          std::copy(r_ball.begin(), r_ball.end(),
                    r_data_.begin() +
                        static_cast<std::ptrdiff_t>(r_offsets_[vi]));
          if (!implicit)
            std::copy(e_ball.begin(), e_ball.end(),
                      e_data_.begin() +
                          static_cast<std::ptrdiff_t>(e_offsets_[vi]));
          if (build_covers) {
            cover_counts_[vi] = build_ball_cover(g, r_ball, clique_of);
            std::copy(clique_of.begin(), clique_of.end(),
                      cover_data_.begin() +
                          static_cast<std::ptrdiff_t>(r_offsets_[vi]));
          }
        }
      },
      workers);
}

std::int64_t NeighborhoodCache::resident_bytes() const {
  const auto bytes = [](const auto& vec) {
    return static_cast<std::int64_t>(vec.size() * sizeof(vec[0]));
  };
  return bytes(r_offsets_) + bytes(r_data_) + bytes(e_offsets_) +
         bytes(e_data_) + bytes(e_sizes_) + bytes(cover_data_) +
         bytes(cover_counts_);
}

std::int64_t NeighborhoodCache::explicit_layout_bytes() const {
  if (tier_ == EballTier::kExplicit) return resident_bytes();
  std::int64_t e_entries = 0;
  for (const int s : e_sizes_) e_entries += s;
  const auto bytes = [](const auto& vec) {
    return static_cast<std::int64_t>(vec.size() * sizeof(vec[0]));
  };
  return resident_bytes() - bytes(e_sizes_) +
         static_cast<std::int64_t>(size_ + 1) *
             static_cast<std::int64_t>(sizeof(std::int64_t)) +
         e_entries * static_cast<std::int64_t>(sizeof(int));
}

void NeighborhoodCache::apply_delta(const Graph& g,
                                    std::span<const int> touched) {
  MHCA_ASSERT(built(), "apply_delta on an unbuilt cache");
  MHCA_ASSERT(g.size() == size_, "graph size changed under the cache");
  if (touched.empty()) {
    last_invalidated_ = 0;
    return;
  }

  // Affected = within 2r+1 hops of a touched vertex on the already-patched
  // graph — one multi-source BFS. Complete per the argument in the header:
  // a ball gained a member only through an added (touched-endpoint) edge,
  // and lost one only through a removed edge whose surviving old-path
  // prefix ends at a touched vertex; either way the owner is within 2r+1
  // *new-graph* hops of `touched`.
  std::vector<char> affected(static_cast<std::size_t>(size_), 0);
  for (int t : touched)
    MHCA_ASSERT(t >= 0 && t < size_, "touched vertex out of range");
  BfsScratch scratch(size_);
  std::vector<int> reach;
  scratch.multi_source_k_hop(g, touched, 2 * r_ + 1, reach);
  for (int v : reach) affected[static_cast<std::size_t>(v)] = 1;

  // Recompute only the affected balls, buffered flat (the buffers hold the
  // blast radius, not the whole cache). Everything below is about writing
  // them back without the old whole-array rewrite: a span whose size did
  // not change — and every span before the first size change — keeps its
  // offset, so it is patched in place (zero copy for unaffected spans);
  // only the suffix from the first size-changing vertex on shifts and gets
  // rewritten. A single touched vertex used to cost a full ~O(total
  // entries) copy (~120 MB at 50k vertices, r=2); now it costs the
  // recomputed balls plus whatever suffix actually moved. On the implicit
  // tier the e-ball side degenerates to overwriting the affected sizes.
  const auto n = static_cast<std::size_t>(size_);
  const bool covers = has_covers();
  const bool implicit = tier_ == EballTier::kImplicit;
  std::vector<int> aff;                      // affected ids, ascending
  std::vector<std::int64_t> ar_off{0}, ae_off{0};  // per-affected offsets
  std::vector<int> ar_data, ae_data, acov_data;
  std::vector<int> r_ball_buf, e_ball_buf, clique_of;
  for (int v = 0; v < size_; ++v) {
    if (!affected[static_cast<std::size_t>(v)]) continue;
    aff.push_back(v);
    scratch.two_radius_neighborhood(g, v, r_, 2 * r_ + 1, r_ball_buf,
                                    e_ball_buf);
    ar_data.insert(ar_data.end(), r_ball_buf.begin(), r_ball_buf.end());
    ar_off.push_back(static_cast<std::int64_t>(ar_data.size()));
    if (implicit) {
      e_sizes_[static_cast<std::size_t>(v)] =
          static_cast<int>(e_ball_buf.size());
    } else {
      ae_data.insert(ae_data.end(), e_ball_buf.begin(), e_ball_buf.end());
      ae_off.push_back(static_cast<std::int64_t>(ae_data.size()));
    }
    if (covers) {
      cover_counts_[static_cast<std::size_t>(v)] =
          build_ball_cover(g, r_ball_buf, clique_of);
      acov_data.insert(acov_data.end(), clique_of.begin(), clique_of.end());
    }
  }

  const auto new_size = [&](const std::vector<std::int64_t>& off,
                            std::size_t i) {
    return off[i + 1] - off[i];
  };
  const auto old_size = [&](const std::vector<std::int64_t>& off, int v) {
    return off[static_cast<std::size_t>(v) + 1] -
           off[static_cast<std::size_t>(v)];
  };
  // First vertex whose span offset moves = first affected vertex whose ball
  // changed size; everything before it is patched in place.
  const auto patch = [&](std::vector<std::int64_t>& offsets,
                         std::vector<int>& data,
                         const std::vector<std::int64_t>& a_off,
                         const std::vector<int>& a_data,
                         std::vector<int>* cov_data) {
    int first_shift = size_;
    for (std::size_t i = 0; i < aff.size(); ++i) {
      if (new_size(a_off, i) != old_size(offsets, aff[i])) {
        first_shift = aff[i];
        break;
      }
    }
    std::size_t i = 0;
    for (; i < aff.size() && aff[i] < first_shift; ++i) {
      const auto dst = static_cast<std::ptrdiff_t>(
          offsets[static_cast<std::size_t>(aff[i])]);
      const auto src = static_cast<std::ptrdiff_t>(a_off[i]);
      const auto len = static_cast<std::ptrdiff_t>(new_size(a_off, i));
      std::copy(a_data.begin() + src, a_data.begin() + src + len,
                data.begin() + dst);
      if (cov_data)
        std::copy(acov_data.begin() + src, acov_data.begin() + src + len,
                  cov_data->begin() + dst);
    }
    if (first_shift == size_) return;
    // Rebuild the shifted suffix: affected spans from the buffers,
    // unaffected ones copied over from their (still intact) old position.
    std::vector<int> tail, cov_tail;
    std::vector<std::int64_t> sizes;
    sizes.reserve(n - static_cast<std::size_t>(first_shift));
    for (int v = first_shift; v < size_; ++v) {
      if (i < aff.size() && aff[i] == v) {
        const auto src = static_cast<std::ptrdiff_t>(a_off[i]);
        const auto len = static_cast<std::ptrdiff_t>(new_size(a_off, i));
        tail.insert(tail.end(), a_data.begin() + src,
                    a_data.begin() + src + len);
        if (cov_data)
          cov_tail.insert(cov_tail.end(), acov_data.begin() + src,
                          acov_data.begin() + src + len);
        sizes.push_back(len);
        ++i;
      } else {
        const auto b = static_cast<std::ptrdiff_t>(
            offsets[static_cast<std::size_t>(v)]);
        const auto len = static_cast<std::ptrdiff_t>(old_size(offsets, v));
        tail.insert(tail.end(), data.begin() + b, data.begin() + b + len);
        if (cov_data)
          cov_tail.insert(cov_tail.end(), cov_data->begin() + b,
                          cov_data->begin() + b + len);
        sizes.push_back(len);
      }
    }
    const auto keep = static_cast<std::size_t>(
        offsets[static_cast<std::size_t>(first_shift)]);
    data.resize(keep + tail.size());
    std::copy(tail.begin(), tail.end(),
              data.begin() + static_cast<std::ptrdiff_t>(keep));
    if (cov_data) {
      cov_data->resize(keep + cov_tail.size());
      std::copy(cov_tail.begin(), cov_tail.end(),
                cov_data->begin() + static_cast<std::ptrdiff_t>(keep));
    }
    for (int v = first_shift; v < size_; ++v)
      offsets[static_cast<std::size_t>(v) + 1] =
          offsets[static_cast<std::size_t>(v)] +
          sizes[static_cast<std::size_t>(v - first_shift)];
  };
  patch(r_offsets_, r_data_, ar_off, ar_data, covers ? &cover_data_ : nullptr);
  if (!implicit) patch(e_offsets_, e_data_, ae_off, ae_data, nullptr);
  last_invalidated_ = static_cast<int>(aff.size());
}

int NeighborhoodCache::build_ball_cover(const Graph& g,
                                        std::span<const int> ball,
                                        std::vector<int>& clique_of) {
  clique_of.assign(ball.size(), -1);
  // Cliques as (first-member-index, id) chains would save memory, but balls
  // are small; plain member lists keep the placement check obvious.
  std::vector<std::vector<int>> cliques;
  for (std::size_t i = 0; i < ball.size(); ++i) {
    const int v = ball[i];
    bool placed = false;
    for (std::size_t q = 0; q < cliques.size(); ++q) {
      bool all_adjacent = true;
      for (int u : cliques[q]) {
        if (!g.has_edge(v, u)) {
          all_adjacent = false;
          break;
        }
      }
      if (all_adjacent) {
        cliques[q].push_back(v);
        clique_of[i] = static_cast<int>(q);
        placed = true;
        break;
      }
    }
    if (!placed) {
      clique_of[i] = static_cast<int>(cliques.size());
      cliques.push_back({v});
    }
  }
  return static_cast<int>(cliques.size());
}

}  // namespace mhca
