// Induced subgraphs with parent-index bookkeeping.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace mhca {

/// A subgraph induced by a vertex subset, remembering the original ids.
struct InducedSubgraph {
  Graph graph;                 ///< Local graph on 0..k-1.
  std::vector<int> to_parent;  ///< Local index -> original vertex id.

  /// Map local vertex ids back to parent ids.
  std::vector<int> lift(std::span<const int> local) const;
};

/// Build the subgraph of `g` induced by `vertices` (need not be sorted;
/// duplicates are rejected).
InducedSubgraph induced_subgraph(const Graph& g, std::span<const int> vertices);

}  // namespace mhca
