#include "graph/graph.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"
#include "util/cpufeatures.h"
#include "util/simd_scan.h"

namespace mhca {

void Graph::add_edge(int u, int v) {
  MHCA_ASSERT(u >= 0 && u < size() && v >= 0 && v < size(),
              "edge endpoint out of range");
  MHCA_ASSERT(u != v, "self-loops are not allowed");
  if (finalized()) definalize();
  if (has_edge(u, v)) return;
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
}

void Graph::finalize() {
  if (finalized()) return;
  const auto n = static_cast<std::size_t>(n_);
  offsets_.assign(n + 1, 0);
  std::int64_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += static_cast<std::int64_t>(adj_[v].size());
  }
  offsets_[n] = total;
  edges_.resize(static_cast<std::size_t>(total));
  for (std::size_t v = 0; v < n; ++v)
    std::copy(adj_[v].begin(), adj_[v].end(),
              edges_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]));
  if (n_ > 0 && n_ <= kAdjacencyMatrixLimit) {
    row_blocks_ = (n + 63) / 64;
    bits_.assign(n * row_blocks_, 0);
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t* row = bits_.data() + v * row_blocks_;
      for (int u : adj_[v]) {
        const auto ui = static_cast<std::size_t>(u);
        row[ui / 64] |= (std::uint64_t{1} << (ui % 64));
      }
    }
  } else if (n_ > kAdjacencyMatrixLimit) {
    build_sparse_rows();
  }
  adj_.clear();
  adj_.shrink_to_fit();
}

void Graph::append_sparse_row(int v, std::vector<int>& blocks,
                              std::vector<std::uint64_t>& words) const {
  // Neighbors are sorted, so equal-block runs are contiguous: one output
  // entry per run.
  int cur_block = -1;
  std::uint64_t cur_word = 0;
  for (int u : neighbors(v)) {
    const int b = u / 64;
    if (b != cur_block) {
      if (cur_block >= 0) {
        blocks.push_back(cur_block);
        words.push_back(cur_word);
      }
      cur_block = b;
      cur_word = 0;
    }
    cur_word |= std::uint64_t{1} << (u % 64);
  }
  if (cur_block >= 0) {
    blocks.push_back(cur_block);
    words.push_back(cur_word);
  }
}

void Graph::build_sparse_rows() {
  const auto n = static_cast<std::size_t>(n_);
  srow_offsets_.assign(n + 1, 0);
  srow_blocks_.clear();
  srow_words_.clear();
  // A row has at most deg(v) nonzero blocks; reserving 2|E| upper-bounds it.
  srow_blocks_.reserve(edges_.size());
  srow_words_.reserve(edges_.size());
  for (int v = 0; v < n_; ++v) {
    append_sparse_row(v, srow_blocks_, srow_words_);
    srow_offsets_[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(srow_blocks_.size());
  }
  srow_blocks_.shrink_to_fit();
  srow_words_.shrink_to_fit();
}

void Graph::apply_delta(std::span<const std::pair<int, int>> added,
                        std::span<const std::pair<int, int>> removed) {
  MHCA_ASSERT(finalized(), "apply_delta requires a finalized graph");
  if (added.empty() && removed.empty()) return;

  // Expand each undirected change into its two directed half-edges and sort
  // them, so the per-row merge below consumes both lists in one sweep.
  std::vector<std::pair<int, int>> add2, rem2;
  add2.reserve(added.size() * 2);
  rem2.reserve(removed.size() * 2);
  for (const auto& [u, v] : added) {
    MHCA_ASSERT(u >= 0 && u < size() && v >= 0 && v < size(),
                "edge endpoint out of range");
    MHCA_ASSERT(u != v, "self-loops are not allowed");
    MHCA_ASSERT(!has_edge(u, v), "apply_delta: added edge already present");
    add2.emplace_back(u, v);
    add2.emplace_back(v, u);
  }
  for (const auto& [u, v] : removed) {
    MHCA_ASSERT(u >= 0 && u < size() && v >= 0 && v < size(),
                "edge endpoint out of range");
    MHCA_ASSERT(has_edge(u, v), "apply_delta: removed edge not present");
    rem2.emplace_back(u, v);
    rem2.emplace_back(v, u);
  }
  std::sort(add2.begin(), add2.end());
  std::sort(rem2.begin(), rem2.end());
  for (std::size_t i = 1; i < add2.size(); ++i)
    MHCA_ASSERT(add2[i] != add2[i - 1], "apply_delta: duplicate added edge");
  for (std::size_t i = 1; i < rem2.size(); ++i)
    MHCA_ASSERT(rem2[i] != rem2[i - 1], "apply_delta: duplicate removed edge");

  const auto n = static_cast<std::size_t>(n_);
  std::vector<int> new_edges;
  new_edges.reserve(edges_.size() + add2.size() - rem2.size());
  std::vector<std::int64_t> new_offsets(n + 1, 0);
  std::size_t ai = 0, ri = 0;
  for (std::size_t v = 0; v < n; ++v) {
    new_offsets[v] = static_cast<std::int64_t>(new_edges.size());
    const auto row = neighbors(static_cast<int>(v));
    std::size_t i = 0;
    // Merge the sorted old row with this row's sorted additions, skipping
    // this row's removals. Rows without changes reduce to one bulk append.
    while (ai < add2.size() && add2[ai].first == static_cast<int>(v)) {
      const int u = add2[ai].second;
      while (i < row.size() && row[i] < u) {
        if (ri < rem2.size() && rem2[ri].first == static_cast<int>(v) &&
            rem2[ri].second == row[i]) {
          ++ri;
        } else {
          new_edges.push_back(row[i]);
        }
        ++i;
      }
      new_edges.push_back(u);
      ++ai;
    }
    while (i < row.size()) {
      if (ri < rem2.size() && rem2[ri].first == static_cast<int>(v) &&
          rem2[ri].second == row[i]) {
        ++ri;
      } else {
        new_edges.push_back(row[i]);
      }
      ++i;
    }
  }
  new_offsets[n] = static_cast<std::int64_t>(new_edges.size());
  MHCA_ASSERT(ai == add2.size() && ri == rem2.size(),
              "apply_delta: unconsumed edge changes");
  offsets_ = std::move(new_offsets);
  edges_ = std::move(new_edges);

  if (has_adjacency_matrix()) {
    const auto set_bit = [&](int a, int b, bool on) {
      const auto bi = static_cast<std::size_t>(b);
      std::uint64_t& word =
          bits_[static_cast<std::size_t>(a) * row_blocks_ + bi / 64];
      const std::uint64_t mask = std::uint64_t{1} << (bi % 64);
      if (on)
        word |= mask;
      else
        word &= ~mask;
    };
    for (const auto& [a, b] : add2) set_bit(a, b, true);
    for (const auto& [a, b] : rem2) set_bit(a, b, false);
  }

  if (has_sparse_rows()) {
    // One pass over the rows: unchanged rows bulk-copy their old block run,
    // rows incident to a change rebuild from the (already rewritten) CSR.
    std::vector<char> row_changed(n, 0);
    for (const auto& [a, b] : add2)
      row_changed[static_cast<std::size_t>(a)] = 1;
    for (const auto& [a, b] : rem2)
      row_changed[static_cast<std::size_t>(a)] = 1;
    std::vector<std::int64_t> new_off(n + 1, 0);
    std::vector<int> new_blocks;
    std::vector<std::uint64_t> new_words;
    new_blocks.reserve(srow_blocks_.size() + add2.size());
    new_words.reserve(srow_words_.size() + add2.size());
    for (int v = 0; v < n_; ++v) {
      if (row_changed[static_cast<std::size_t>(v)]) {
        append_sparse_row(v, new_blocks, new_words);
      } else {
        const auto bs = sparse_row_blocks(v);
        const auto ws = sparse_row_words(v);
        new_blocks.insert(new_blocks.end(), bs.begin(), bs.end());
        new_words.insert(new_words.end(), ws.begin(), ws.end());
      }
      new_off[static_cast<std::size_t>(v) + 1] =
          static_cast<std::int64_t>(new_blocks.size());
    }
    srow_offsets_ = std::move(new_off);
    srow_blocks_ = std::move(new_blocks);
    srow_words_ = std::move(new_words);
  }
}

void Graph::definalize() {
  adj_.assign(static_cast<std::size_t>(n_), {});
  for (int v = 0; v < n_; ++v) {
    const auto nb = neighbors(v);
    adj_[static_cast<std::size_t>(v)].assign(nb.begin(), nb.end());
  }
  offsets_.clear();
  edges_.clear();
  bits_.clear();
  row_blocks_ = 0;
  srow_offsets_.clear();
  srow_blocks_.clear();
  srow_words_.clear();
}

bool Graph::has_edge(int u, int v) const {
  if (u < 0 || v < 0 || u >= size() || v >= size() || u == v) return false;
  if (has_adjacency_matrix()) {
    const auto vi = static_cast<std::size_t>(v);
    return (bits_[static_cast<std::size_t>(u) * row_blocks_ + vi / 64] >>
            (vi % 64)) &
           1u;
  }
  if (has_sparse_rows()) {
    // Search the shorter row's O(deg) block list for v's column block.
    if (degree(u) > degree(v)) std::swap(u, v);
    const auto blocks = sparse_row_blocks(u);
    const int vb = v / 64;
    const auto it = std::lower_bound(blocks.begin(), blocks.end(), vb);
    if (it == blocks.end() || *it != vb) return false;
    const auto k = static_cast<std::size_t>(it - blocks.begin());
    return (sparse_row_words(u)[k] >> (v % 64)) & 1u;
  }
  const auto nu = neighbors(u);
  const auto nv = neighbors(v);
  const auto shorter = nu.size() <= nv.size() ? nu : nv;
  const int target = nu.size() <= nv.size() ? v : u;
  return std::binary_search(shorter.begin(), shorter.end(), target);
}

std::int64_t Graph::num_edges() const {
  if (finalized()) return offsets_[static_cast<std::size_t>(n_)] / 2;
  std::int64_t twice = 0;
  for (const auto& a : adj_) twice += static_cast<std::int64_t>(a.size());
  return twice / 2;
}

double Graph::average_degree() const {
  if (size() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(size());
}

int Graph::max_degree() const {
  int best = 0;
  for (int v = 0; v < size(); ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::is_connected() const {
  if (size() <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(size()), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++reached;
        q.push(u);
      }
    }
  }
  return reached == size();
}

bool Graph::is_independent_set(std::span<const int> vs) const {
  // Mark each member, then scan each member's neighbor row for an earlier
  // mark: an edge {a, b} with a before b in vs is caught at b (a is marked
  // and a ∈ N(b)), and a duplicate is caught at its second occurrence. The
  // stamp array makes the scratch reusable without an O(n) clear — one
  // thread-local instance serves every graph on the thread (the engine's
  // end-of-run assert and the net runtime both validate here, possibly
  // from replication worker threads).
  struct MarkScratch {
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
  };
  thread_local MarkScratch s;
  if (s.stamp.size() < static_cast<std::size_t>(size()))
    s.stamp.resize(static_cast<std::size_t>(size()), 0);
  if (++s.epoch == 0) {  // wrap: stale stamps could alias the new epoch
    std::fill(s.stamp.begin(), s.stamp.end(), 0);
    s.epoch = 1;
  }
  // The neighbor-row scan is an unordered existence test (is any neighbor
  // stamped this epoch?), so the vector gather-compare kernel answers
  // identically to the scalar loop at every dispatch level.
  const util::SimdLevel simd = util::simd_level();
  for (int v : vs) {
    const auto vi = static_cast<std::size_t>(v);
    if (s.stamp[vi] == s.epoch) return false;  // duplicate vertex
    const auto row = neighbors(v);
    if (util::simd_any_stamp_equal(s.stamp.data(), row.data(), row.size(),
                                   s.epoch, simd))
      return false;
    s.stamp[vi] = s.epoch;
  }
  return true;
}

bool Graph::is_independent_set_pairwise(std::span<const int> vs) const {
  for (std::size_t i = 0; i < vs.size(); ++i)
    for (std::size_t j = i + 1; j < vs.size(); ++j)
      if (vs[i] == vs[j] || has_edge(vs[i], vs[j])) return false;
  return true;
}

}  // namespace mhca
