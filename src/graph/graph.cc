#include "graph/graph.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace mhca {

void Graph::add_edge(int u, int v) {
  MHCA_ASSERT(u >= 0 && u < size() && v >= 0 && v < size(),
              "edge endpoint out of range");
  MHCA_ASSERT(u != v, "self-loops are not allowed");
  if (finalized()) definalize();
  if (has_edge(u, v)) return;
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
}

void Graph::finalize() {
  if (finalized()) return;
  const auto n = static_cast<std::size_t>(n_);
  offsets_.assign(n + 1, 0);
  std::int64_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += static_cast<std::int64_t>(adj_[v].size());
  }
  offsets_[n] = total;
  edges_.resize(static_cast<std::size_t>(total));
  for (std::size_t v = 0; v < n; ++v)
    std::copy(adj_[v].begin(), adj_[v].end(),
              edges_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]));
  if (n_ > 0 && n_ <= kAdjacencyMatrixLimit) {
    row_blocks_ = (n + 63) / 64;
    bits_.assign(n * row_blocks_, 0);
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t* row = bits_.data() + v * row_blocks_;
      for (int u : adj_[v]) {
        const auto ui = static_cast<std::size_t>(u);
        row[ui / 64] |= (std::uint64_t{1} << (ui % 64));
      }
    }
  }
  adj_.clear();
  adj_.shrink_to_fit();
}

void Graph::definalize() {
  adj_.assign(static_cast<std::size_t>(n_), {});
  for (int v = 0; v < n_; ++v) {
    const auto nb = neighbors(v);
    adj_[static_cast<std::size_t>(v)].assign(nb.begin(), nb.end());
  }
  offsets_.clear();
  edges_.clear();
  bits_.clear();
  row_blocks_ = 0;
}

bool Graph::has_edge(int u, int v) const {
  if (u < 0 || v < 0 || u >= size() || v >= size() || u == v) return false;
  if (has_adjacency_matrix()) {
    const auto vi = static_cast<std::size_t>(v);
    return (bits_[static_cast<std::size_t>(u) * row_blocks_ + vi / 64] >>
            (vi % 64)) &
           1u;
  }
  const auto nu = neighbors(u);
  const auto nv = neighbors(v);
  const auto shorter = nu.size() <= nv.size() ? nu : nv;
  const int target = nu.size() <= nv.size() ? v : u;
  return std::binary_search(shorter.begin(), shorter.end(), target);
}

std::int64_t Graph::num_edges() const {
  if (finalized()) return offsets_[static_cast<std::size_t>(n_)] / 2;
  std::int64_t twice = 0;
  for (const auto& a : adj_) twice += static_cast<std::int64_t>(a.size());
  return twice / 2;
}

double Graph::average_degree() const {
  if (size() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(size());
}

int Graph::max_degree() const {
  int best = 0;
  for (int v = 0; v < size(); ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::is_connected() const {
  if (size() <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(size()), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++reached;
        q.push(u);
      }
    }
  }
  return reached == size();
}

bool Graph::is_independent_set(std::span<const int> vs) const {
  for (std::size_t i = 0; i < vs.size(); ++i)
    for (std::size_t j = i + 1; j < vs.size(); ++j)
      if (vs[i] == vs[j] || has_edge(vs[i], vs[j])) return false;
  return true;
}

}  // namespace mhca
