#include "graph/graph.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace mhca {

void Graph::add_edge(int u, int v) {
  MHCA_ASSERT(u >= 0 && u < size() && v >= 0 && v < size(),
              "edge endpoint out of range");
  MHCA_ASSERT(u != v, "self-loops are not allowed");
  if (has_edge(u, v)) return;
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
}

bool Graph::has_edge(int u, int v) const {
  if (u < 0 || v < 0 || u >= size() || v >= size() || u == v) return false;
  const auto& au = adj_[static_cast<std::size_t>(u)];
  const auto& av = adj_[static_cast<std::size_t>(v)];
  const auto& shorter = au.size() <= av.size() ? au : av;
  const int target = au.size() <= av.size() ? v : u;
  return std::binary_search(shorter.begin(), shorter.end(), target);
}

std::int64_t Graph::num_edges() const {
  std::int64_t twice = 0;
  for (const auto& a : adj_) twice += static_cast<std::int64_t>(a.size());
  return twice / 2;
}

double Graph::average_degree() const {
  if (size() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(size());
}

int Graph::max_degree() const {
  int best = 0;
  for (int v = 0; v < size(); ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::is_connected() const {
  if (size() <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(size()), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++reached;
        q.push(u);
      }
    }
  }
  return reached == size();
}

bool Graph::is_independent_set(std::span<const int> vs) const {
  for (std::size_t i = 0; i < vs.size(); ++i)
    for (std::size_t j = i + 1; j < vs.size(); ++j)
      if (vs[i] == vs[j] || has_edge(vs[i], vs[j])) return false;
  return true;
}

}  // namespace mhca
