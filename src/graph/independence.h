// Independent-set helpers: validation, weights, and maximal-IS enumeration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mhca {

/// Sum of `weights[v]` over `vs`.
double set_weight(std::span<const int> vs, std::span<const double> weights);

/// Enumerate all *maximal* independent sets of `g` (Bron–Kerbosch with
/// pivoting on the complement-clique view), stopping after `cap` sets.
///
/// Used by the naive strategy-as-arm UCB baseline (the paper's O(M^N)
/// strawman) and by exhaustive tests on tiny graphs. Returns true if the
/// enumeration completed, false if it was truncated by `cap`.
bool enumerate_maximal_independent_sets(const Graph& g, std::size_t cap,
                                        std::vector<std::vector<int>>& out);

/// Exact maximum *cardinality* independent set size, by exhaustive branch
/// and bound (small graphs only). Used to test growth-boundedness claims.
int independence_number(const Graph& g);

}  // namespace mhca
