// Conflict graph G = (V, E) over secondary users (paper §II).
//
// Conflicts are modeled with unit disks: nodes u, v conflict (edge) when
// their disks intersect, i.e. Euclidean distance <= conflict radius.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/geometry.h"
#include "graph/graph.h"

namespace mhca {

/// The users' conflict graph, optionally carrying node positions.
///
/// Positions are only needed by the unit-disk construction; all algorithms
/// in the library (notably the robust PTAS, which is location-free — a key
/// selling point of the paper) use only the adjacency structure.
class ConflictGraph {
 public:
  /// Unit-disk construction: edge iff distance(u, v) <= radius.
  static ConflictGraph from_positions(std::vector<Point> positions,
                                      double radius);

  /// Explicit topology (no geometry).
  static ConflictGraph from_edges(int num_nodes,
                                  const std::vector<std::pair<int, int>>& edges);

  int num_nodes() const { return graph_.size(); }
  const Graph& graph() const { return graph_; }

  /// Incrementally patch the conflict structure (node churn / mobility; see
  /// src/dynamics/README.md). Positions, if any, are left untouched — the
  /// library's algorithms are location-free and read only the adjacency.
  void apply_edge_delta(std::span<const std::pair<int, int>> added,
                        std::span<const std::pair<int, int>> removed) {
    graph_.apply_delta(added, removed);
  }

  bool has_positions() const { return !positions_.empty(); }
  const std::vector<Point>& positions() const { return positions_; }
  double radius() const { return radius_; }

 private:
  Graph graph_;
  std::vector<Point> positions_;
  double radius_ = 0.0;
};

}  // namespace mhca
