#include "graph/conflict_graph.h"

#include "util/assert.h"

namespace mhca {

ConflictGraph ConflictGraph::from_positions(std::vector<Point> positions,
                                            double radius) {
  MHCA_ASSERT(radius > 0.0, "conflict radius must be positive");
  ConflictGraph cg;
  const int n = static_cast<int>(positions.size());
  cg.graph_ = Graph(n);
  cg.positions_ = std::move(positions);
  cg.radius_ = radius;
  const double r2 = radius * radius;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (squared_distance(cg.positions_[static_cast<std::size_t>(i)],
                           cg.positions_[static_cast<std::size_t>(j)]) <= r2)
        cg.graph_.add_edge(i, j);
  cg.graph_.finalize();
  return cg;
}

ConflictGraph ConflictGraph::from_edges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges) {
  ConflictGraph cg;
  cg.graph_ = Graph(num_nodes);
  for (const auto& [u, v] : edges) cg.graph_.add_edge(u, v);
  cg.graph_.finalize();
  return cg;
}

}  // namespace mhca
