#include "graph/conflict_graph.h"

#include "graph/spatial_grid.h"
#include "util/assert.h"

namespace mhca {

ConflictGraph ConflictGraph::from_positions(std::vector<Point> positions,
                                            double radius) {
  MHCA_ASSERT(radius > 0.0, "conflict radius must be positive");
  ConflictGraph cg;
  const int n = static_cast<int>(positions.size());
  cg.graph_ = Graph(n);
  cg.positions_ = std::move(positions);
  cg.radius_ = radius;
  // Grid sweep: O(n * k) pair tests instead of O(n^2). Edge insertion is
  // order-independent (sorted adjacency vectors), so the graph is identical
  // to the naive double loop's.
  const SpatialGrid grid(cg.positions_, radius);
  grid.for_each_pair_within(cg.positions_, radius,
                            [&](int i, int j) { cg.graph_.add_edge(i, j); });
  cg.graph_.finalize();
  return cg;
}

ConflictGraph ConflictGraph::from_edges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges) {
  ConflictGraph cg;
  cg.graph_ = Graph(num_nodes);
  for (const auto& [u, v] : edges) cg.graph_.add_edge(u, v);
  cg.graph_.finalize();
  return cg;
}

}  // namespace mhca
