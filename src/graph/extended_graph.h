// Extended conflict graph H = (Ṽ, Ẽ) (paper §III, Fig. 1).
//
// Every user v_i spawns M virtual vertices v_{i,1}..v_{i,M} forming a clique
// (a node can use at most one channel per round); virtual vertices v_{i,j}
// and v_{p,j} on the *same* channel j are connected iff (i, p) is a conflict
// edge in G. An independent set of H is exactly a feasible strategy: an
// assignment of at most one channel per node with no neighboring nodes
// sharing a channel.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/conflict_graph.h"
#include "graph/graph.h"

namespace mhca {

/// A strategy: per-node channel choice, kNoChannel if the node stays silent.
struct Strategy {
  static constexpr int kNoChannel = -1;
  std::vector<int> channel_of_node;  ///< size N; entries in [0, M) or -1.
};

/// The extended conflict graph over (node, channel) virtual vertices.
class ExtendedConflictGraph {
 public:
  ExtendedConflictGraph(const ConflictGraph& conflicts, int num_channels);

  int num_nodes() const { return num_nodes_; }
  int num_channels() const { return num_channels_; }
  /// K = N * M, the number of arms in the combinatorial bandit.
  int num_vertices() const { return graph_.size(); }

  const Graph& graph() const { return graph_; }

  /// Virtual vertex id of (node i, channel j): i*M + j.
  int vertex_of(int node, int channel) const;
  int master_of(int vertex) const;
  int channel_of(int vertex) const;

  /// Convert an independent set of H into a per-node strategy.
  /// Asserts that `vertices` really is an IS (at most one vertex per node).
  Strategy to_strategy(std::span<const int> vertices) const;

  /// Convert a strategy back to the vertex set of H it corresponds to.
  std::vector<int> to_vertices(const Strategy& s) const;

  /// A strategy is feasible iff no two conflicting nodes share a channel.
  bool is_feasible(const Strategy& s) const;

  /// Lift a conflict-graph edge delta onto H: each changed G edge {u, p}
  /// becomes the M same-channel edges {(u, j), (p, j)}. Per-master cliques
  /// are structural (one channel per node) and never change. Patches the
  /// internal graph incrementally via Graph::apply_delta.
  void apply_conflict_delta(std::span<const std::pair<int, int>> added,
                            std::span<const std::pair<int, int>> removed);

 private:
  int num_nodes_ = 0;
  int num_channels_ = 0;
  Graph graph_;
};

}  // namespace mhca
