// Exact MWIS by branch and bound with a clique-cover upper bound.
//
// The local enumeration step of the distributed robust PTAS (Alg. 3 line 8)
// needs exact MWIS over r-hop candidate sets A_r(v) of the extended graph H.
// H decomposes naturally into per-master cliques (a node's M channel
// vertices), so a greedy clique cover gives a strong bound: at most one
// vertex per clique can be chosen, hence UB = sum of per-clique maxima.
//
// An iteration cap turns the solver into an anytime method: when exceeded,
// it returns the best set found so far — never worse than the greedy
// solution over the same instance — with `exact = false`, mirroring the
// paper's remark that a constant-approximation local solver may replace
// enumeration.
//
// Two search modes share the instance-build code (see BnbSolveOptions):
//
//   classic   The seed algorithm: one-shot greedy clique cover, DFS over
//             cliques with the static suffix-max bound. Kept byte-for-byte
//             for solver-level baseline comparisons (bench_solver_micro)
//             and equivalence tests.
//
//   enhanced  Preprocessing reductions (non-positive-weight drop, isolated
//             take, degree-1 take/fold, adjacent weight-dominance removal),
//             connected-component decomposition (each component searched
//             independently — sum, not product, of subtree sizes), O(1)
//             conflict tests via an incremental conflict counter, pairwise
//             clique-bound corrections, and a residual refinement that
//             replaces each remaining clique's static max by its best
//             member not in conflict with the chosen set. Optionally
//             consumes a memoized clique cover (see NeighborhoodCache)
//             instead of rebuilding one greedily per solve.
//
// Both modes are exact when they complete: on instances with a unique
// optimum they return identical results. Under a node-cap abort the two
// modes may return *different* (equally valid) anytime incumbents, because
// their search trees differ. See src/mwis/README.md for the bound
// hierarchy and the memoization contract.
//
// Repeated solves (one per leader per decision slot) dominate the decision
// path, so the per-solve working set lives in a caller-owned `SolveScratch`
// whose buffers are reused across solves, and local adjacency is gathered
// from the graph's packed bitset rows (mask + remap) instead of per-neighbor
// binary search when the matrix is available. Reuse contract: a scratch may
// be shared by solves over *different* graphs and candidate sets (buffers
// resize as needed) but never by two solves concurrently.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "mwis/mwis.h"

namespace mhca {

/// Reusable working memory for BranchAndBoundMwisSolver. Treat as opaque:
/// contents are rewritten by every solve; only the allocations persist.
struct SolveScratch {
  std::vector<int> cands;                ///< Sorted original candidate ids.
  std::vector<double> w;                 ///< Local weights (folds mutate).
  std::vector<std::uint64_t> adj;        ///< Local bitset adjacency rows.
  std::vector<std::uint64_t> cand_mask;  ///< Global candidate bitset.
  /// Original id -> local id. Only entries whose `cand_mask` bit is set in
  /// the *current* solve are valid; everything else is stale garbage.
  std::vector<int> global_to_local;
  std::vector<std::size_t> order;        ///< Weight-descending vertex order.
  std::vector<std::vector<std::size_t>> cliques;
  std::vector<double> remaining;         ///< Clique-max suffix sums.
  std::vector<std::uint64_t> chosen_mask;
  std::vector<std::size_t> chosen;
  std::vector<std::uint64_t> greedy_mask;
  std::vector<std::size_t> best_set;
  // Enhanced-mode state (unused by the classic search).
  std::vector<int> conflict_cnt;         ///< #chosen neighbors per vertex.
  std::vector<std::uint8_t> vstate;      ///< Reduction state per vertex.
  std::vector<int> degree;               ///< Live local degree.
  std::vector<int> worklist;             ///< Reduction FIFO.
  std::vector<std::size_t> forced;       ///< Vertices taken by reductions.
  std::vector<std::pair<std::size_t, std::size_t>> folds;  ///< (kept, folded).
  std::vector<int> comp;                 ///< Component label per vertex.
  std::vector<std::size_t> comp_queue;   ///< Component BFS queue.
  std::vector<int> qid_bucket;           ///< Memo clique id -> bucket index.
  std::vector<std::size_t> group_begin;  ///< Clique range per component.
  std::vector<std::size_t> group_end;
  std::vector<double> group_best_w;
  std::vector<std::vector<std::size_t>> group_best;
  std::vector<std::size_t> fallback_set; ///< Full-instance greedy backstop.
  std::vector<double> pair_deduct;       ///< Suffix bound corrections.
  std::vector<std::uint8_t> pair_matched;
};

/// Per-solve feature selection for BranchAndBoundMwisSolver. The defaults
/// are the fast path; all-false (plus use_adjacency_rows=false) reproduces
/// the seed implementation exactly.
struct BnbSolveOptions {
  /// Gather local adjacency from the graph's packed rows when available —
  /// dense bitset rows for n <= Graph::kAdjacencyMatrixLimit, sharded
  /// sparse-row blocks beyond it (false = per-neighbor binary search, the
  /// seed build).
  bool use_adjacency_rows = true;
  /// Enhanced search: component decomposition + conflict counters +
  /// residual-refined clique bound. False = classic (seed) search.
  bool enhanced = true;
  /// Preprocessing reductions (requires `enhanced`; ignored otherwise).
  bool use_reductions = true;
  /// Memoized clique cover: clique id per candidate, aligned with the
  /// *sorted* candidate span (callers pass candidates pre-sorted when using
  /// this). Ids must be < clique_id_bound; members of one id must be
  /// pairwise adjacent. Empty = build a greedy cover per solve. Requires
  /// `enhanced`.
  std::span<const int> cand_clique_ids = {};
  int clique_id_bound = 0;
};

class BranchAndBoundMwisSolver : public MwisSolver {
 public:
  /// `reuse_scratch`: keep one SolveScratch inside the solver so repeated
  /// `solve` calls reuse buffers, gather adjacency from bitset rows, and run
  /// the enhanced search. With false, every solve allocates fresh, builds
  /// adjacency by per-neighbor binary search and runs the classic search —
  /// the seed implementation's behavior, kept for equivalence tests and
  /// solver-level baselines. Both modes are exact when they complete
  /// (`exact == true`), so they agree on every instance whose optimum is
  /// unique; under a node-cap abort their anytime incumbents may differ.
  explicit BranchAndBoundMwisSolver(std::int64_t node_cap = 5'000'000,
                                    bool reuse_scratch = true)
      : node_cap_(node_cap), reuse_scratch_(reuse_scratch) {}

  std::string name() const override { return "branch-and-bound"; }

  MwisResult solve(const Graph& g, std::span<const double> weights,
                   std::span<const int> candidates) override;

  /// Solve using caller-owned working memory and explicit feature selection.
  MwisResult solve_with_scratch(const Graph& g,
                                std::span<const double> weights,
                                std::span<const int> candidates,
                                SolveScratch& scratch,
                                const BnbSolveOptions& opts = {}) const;

  std::int64_t node_cap() const { return node_cap_; }

 private:
  std::int64_t node_cap_;
  bool reuse_scratch_;
  SolveScratch scratch_;  ///< Used only when reuse_scratch_.
};

}  // namespace mhca
