// Exact MWIS by branch and bound with a clique-cover upper bound.
//
// The local enumeration step of the distributed robust PTAS (Alg. 3 line 8)
// needs exact MWIS over r-hop candidate sets A_r(v) of the extended graph H.
// H decomposes naturally into per-master cliques (a node's M channel
// vertices), so a greedy clique cover gives a strong bound: at most one
// vertex per clique can be chosen, hence UB = sum of per-clique maxima.
//
// An iteration cap turns the solver into an anytime method: when exceeded,
// it returns the best set found so far (at least as good as greedy, which
// seeds the incumbent) with `exact = false` — mirroring the paper's remark
// that a constant-approximation local solver may replace enumeration.
//
// Repeated solves (one per leader per decision slot) dominate the decision
// path, so the per-solve working set lives in a caller-owned `SolveScratch`
// whose buffers are reused across solves, and local adjacency is gathered
// from the graph's packed bitset rows (mask + remap) instead of per-neighbor
// binary search when the matrix is available. Reuse contract: a scratch may
// be shared by solves over *different* graphs and candidate sets (buffers
// resize as needed) but never by two solves concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "mwis/mwis.h"

namespace mhca {

/// Reusable working memory for BranchAndBoundMwisSolver. Treat as opaque:
/// contents are rewritten by every solve; only the allocations persist.
struct SolveScratch {
  std::vector<int> cands;                ///< Sorted original candidate ids.
  std::vector<double> w;                 ///< Local weights.
  std::vector<std::uint64_t> adj;        ///< Local bitset adjacency rows.
  std::vector<std::uint64_t> cand_mask;  ///< Global candidate bitset.
  /// Original id -> local id. Only entries whose `cand_mask` bit is set in
  /// the *current* solve are valid; everything else is stale garbage.
  std::vector<int> global_to_local;
  std::vector<std::size_t> order;        ///< Weight-descending vertex order.
  std::vector<std::vector<std::size_t>> cliques;
  std::vector<double> remaining;         ///< Clique-max suffix sums.
  std::vector<std::uint64_t> chosen_mask;
  std::vector<std::size_t> chosen;
  std::vector<std::uint64_t> greedy_mask;
  std::vector<std::size_t> best_set;
};

class BranchAndBoundMwisSolver : public MwisSolver {
 public:
  /// `reuse_scratch`: keep one SolveScratch inside the solver so repeated
  /// `solve` calls reuse buffers and the bitset-row adjacency gather. With
  /// false, every solve allocates fresh and builds adjacency by per-neighbor
  /// binary search — the seed implementation's allocation and build
  /// behavior; kept for equivalence tests and the bench_decision_path
  /// baseline. The search itself (branching order, pruning) is shared by
  /// both modes, so results are identical across them by construction.
  explicit BranchAndBoundMwisSolver(std::int64_t node_cap = 5'000'000,
                                    bool reuse_scratch = true)
      : node_cap_(node_cap), reuse_scratch_(reuse_scratch) {}

  std::string name() const override { return "branch-and-bound"; }

  MwisResult solve(const Graph& g, std::span<const double> weights,
                   std::span<const int> candidates) override;

  /// Solve using caller-owned working memory. `use_adjacency_rows` selects
  /// the bitset-row gather (when the graph has a packed matrix) over the
  /// per-neighbor binary-search build; both produce identical adjacency.
  MwisResult solve_with_scratch(const Graph& g,
                                std::span<const double> weights,
                                std::span<const int> candidates,
                                SolveScratch& scratch,
                                bool use_adjacency_rows = true) const;

  std::int64_t node_cap() const { return node_cap_; }

 private:
  std::int64_t node_cap_;
  bool reuse_scratch_;
  SolveScratch scratch_;  ///< Used only when reuse_scratch_.
};

}  // namespace mhca
