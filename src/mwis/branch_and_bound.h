// Exact MWIS by branch and bound with a clique-cover upper bound.
//
// The local enumeration step of the distributed robust PTAS (Alg. 3 line 8)
// needs exact MWIS over r-hop candidate sets A_r(v) of the extended graph H.
// H decomposes naturally into per-master cliques (a node's M channel
// vertices), so a greedy clique cover gives a strong bound: at most one
// vertex per clique can be chosen, hence UB = sum of per-clique maxima.
//
// An iteration cap turns the solver into an anytime method: when exceeded,
// it returns the best set found so far (at least as good as greedy, which
// seeds the incumbent) with `exact = false` — mirroring the paper's remark
// that a constant-approximation local solver may replace enumeration.
#pragma once

#include <cstdint>

#include "mwis/mwis.h"

namespace mhca {

class BranchAndBoundMwisSolver : public MwisSolver {
 public:
  explicit BranchAndBoundMwisSolver(std::int64_t node_cap = 5'000'000)
      : node_cap_(node_cap) {}

  std::string name() const override { return "branch-and-bound"; }

  MwisResult solve(const Graph& g, std::span<const double> weights,
                   std::span<const int> candidates) override;

  std::int64_t node_cap() const { return node_cap_; }

 private:
  std::int64_t node_cap_;
};

}  // namespace mhca
