// Distributed robust PTAS — lockstep engine (paper Algorithm 3).
//
// This class simulates the per-vertex protocol synchronously ("lockstep"):
// each mini-round it (1) elects LocalLeaders — Candidates whose weight is
// maximal among Candidates within their (2r+1)-hop neighborhood, (2) lets
// every leader solve local MWIS over the Candidates in its r-hop ball and
// mark them Winner/Loser, and (3) accounts for the messages the real
// protocol would flood (leader declaration to 2r+1 hops, determination
// results to 3r+1 hops). Because any two leaders are at hop distance
// ≥ 2r+2, their r-hop candidate sets are disjoint and non-adjacent, so the
// union of local MWISs stays independent (Theorem 3).
//
// The message-level implementation of the same protocol lives in src/net;
// integration tests check that both produce identical decisions. Benchmarks
// use this engine (it avoids materializing floods).
//
// The graph never changes between decision slots — only the weights do — so
// by default the constructor precomputes a NeighborhoodCache (per-vertex
// r-hop and (2r+1)-hop balls) and `run()` walks those cached spans: leader
// election checks each Candidate's election ball directly (equivalent to
// the seed's (2r+1) rounds of max-relaxation, which compute exactly the
// ball maxima a real flood would propagate), and local solves read cached
// r-balls instead of re-running BFS. Message *accounting* is unchanged: it
// still charges the real flood sizes. `use_decision_cache = false` restores
// the seed re-derivation path (kept for equivalence tests and benches).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "mwis/mwis.h"

namespace mhca {

/// Protocol status of a virtual vertex (paper §IV-C). LocalLeader is a
/// transient within-mini-round role of a Candidate, not a stored status.
enum class VertexStatus : std::uint8_t { kCandidate, kWinner, kLoser };

/// Which solver a LocalLeader runs on its r-hop candidate set.
enum class LocalSolverKind { kExact, kGreedy };

struct DistributedPtasConfig {
  int r = 2;                 ///< Paper's simulations use r = 2.
  int max_mini_rounds = 0;   ///< D; 0 = run until every vertex is marked.
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  std::int64_t bnb_node_cap = 200'000;  ///< Exact-local effort cap.
  bool count_messages = false;          ///< Track flood sizes (costs BFS).
  /// Precompute ball structure once and reuse solver scratch across local
  /// solves. False = per-decision re-derivation exactly as the seed
  /// implementation (same results either way, slower).
  bool use_decision_cache = true;
};

/// Per-mini-round trace record (drives the Fig. 6 reproduction).
struct MiniRoundRecord {
  int mini_round = 0;          ///< 1-based.
  int leaders = 0;
  int new_winners = 0;
  int new_losers = 0;
  int candidates_remaining = 0;
  double cumulative_weight = 0.0;  ///< Summed weight of all winners so far.
  std::int64_t messages = 0;       ///< Messages flooded this mini-round.
};

struct DistributedPtasResult {
  std::vector<int> winners;   ///< Final independent set (sorted).
  double weight = 0.0;
  bool all_marked = false;    ///< Every vertex reached Winner/Loser.
  int mini_rounds_used = 0;
  std::vector<MiniRoundRecord> mini_rounds;
  std::int64_t total_messages = 0;
  std::int64_t total_mini_timeslots = 0;
  std::int64_t solver_nodes_explored = 0;
};

class DistributedRobustPtas {
 public:
  /// The graph reference must outlive this object. The graph must not be
  /// mutated afterwards when the decision cache is enabled.
  explicit DistributedRobustPtas(const Graph& h,
                                 DistributedPtasConfig cfg = {});

  const DistributedPtasConfig& config() const { return cfg_; }

  /// The precomputed ball structure (unbuilt if use_decision_cache=false).
  const NeighborhoodCache& neighborhood_cache() const { return cache_; }

  /// Run one full strategy decision over the given vertex weights.
  DistributedPtasResult run(std::span<const double> weights);

  /// Messages the Weight-Broadcast step of Algorithm 2 costs: each vertex of
  /// the previous strategy floods its new estimate within 2r+1 hops.
  std::int64_t weight_broadcast_messages(std::span<const int> prev_winners);

 private:
  int ball_size(int v, int radius);

  /// Seed election: (2r+1) rounds of max-relaxation over the adjacency
  /// structure — exactly the information a real flood would propagate —
  /// with ties broken by vertex id (the paper assumes distinct weights).
  void elect_by_relaxation(std::span<const double> weights,
                           const std::vector<VertexStatus>& status,
                           std::vector<int>& leaders);

  /// Cached election: a Candidate leads iff no Candidate in its cached
  /// (2r+1)-hop ball has a larger key. Identical leader set by construction.
  void elect_by_cache(std::span<const double> weights,
                      const std::vector<VertexStatus>& status,
                      std::vector<int>& leaders);

  const Graph& h_;
  DistributedPtasConfig cfg_;
  BranchAndBoundMwisSolver exact_;
  GreedyMwisSolver greedy_;
  BfsScratch scratch_;
  NeighborhoodCache cache_;  ///< Built once iff cfg_.use_decision_cache.
  /// radius -> per-vertex |J_radius(v)| (-1 = not yet computed). Serves the
  /// radii the cache does not store (the 3r+2 LB flood).
  std::unordered_map<int, std::vector<int>> ball_size_cache_;
  // run() working buffers, reused across decision slots.
  std::vector<std::pair<double, int>> relax_;
  std::vector<std::pair<double, int>> relax_next_;
};

}  // namespace mhca
