// Distributed robust PTAS — lockstep engine (paper Algorithm 3).
//
// This class simulates the per-vertex protocol synchronously ("lockstep"):
// each mini-round it (1) elects LocalLeaders — Candidates whose weight is
// maximal among Candidates within their (2r+1)-hop neighborhood, (2) lets
// every leader solve local MWIS over the Candidates in its r-hop ball and
// mark them Winner/Loser, and (3) accounts for the messages the real
// protocol would flood (leader declaration to 2r+1 hops, determination
// results to 3r+1 hops). Because any two leaders are at hop distance
// ≥ 2r+2, their r-hop candidate sets are disjoint and non-adjacent, so the
// union of local MWISs stays independent (Theorem 3).
//
// The message-level implementation of the same protocol lives in src/net;
// integration tests check that both produce identical decisions. Benchmarks
// use this engine (it avoids materializing floods).
//
// Leader election uses (2r+1) rounds of max-relaxation over the adjacency
// structure — exactly the information a real flood would propagate — with
// ties broken by vertex id (the paper assumes distinct weights).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/hop.h"
#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "mwis/mwis.h"

namespace mhca {

/// Protocol status of a virtual vertex (paper §IV-C). LocalLeader is a
/// transient within-mini-round role of a Candidate, not a stored status.
enum class VertexStatus : std::uint8_t { kCandidate, kWinner, kLoser };

/// Which solver a LocalLeader runs on its r-hop candidate set.
enum class LocalSolverKind { kExact, kGreedy };

struct DistributedPtasConfig {
  int r = 2;                 ///< Paper's simulations use r = 2.
  int max_mini_rounds = 0;   ///< D; 0 = run until every vertex is marked.
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  std::int64_t bnb_node_cap = 200'000;  ///< Exact-local effort cap.
  bool count_messages = false;          ///< Track flood sizes (costs BFS).
};

/// Per-mini-round trace record (drives the Fig. 6 reproduction).
struct MiniRoundRecord {
  int mini_round = 0;          ///< 1-based.
  int leaders = 0;
  int new_winners = 0;
  int new_losers = 0;
  int candidates_remaining = 0;
  double cumulative_weight = 0.0;  ///< Summed weight of all winners so far.
  std::int64_t messages = 0;       ///< Messages flooded this mini-round.
};

struct DistributedPtasResult {
  std::vector<int> winners;   ///< Final independent set (sorted).
  double weight = 0.0;
  bool all_marked = false;    ///< Every vertex reached Winner/Loser.
  int mini_rounds_used = 0;
  std::vector<MiniRoundRecord> mini_rounds;
  std::int64_t total_messages = 0;
  std::int64_t total_mini_timeslots = 0;
  std::int64_t solver_nodes_explored = 0;
};

class DistributedRobustPtas {
 public:
  /// The graph reference must outlive this object.
  explicit DistributedRobustPtas(const Graph& h,
                                 DistributedPtasConfig cfg = {});

  const DistributedPtasConfig& config() const { return cfg_; }

  /// Run one full strategy decision over the given vertex weights.
  DistributedPtasResult run(std::span<const double> weights);

  /// Messages the Weight-Broadcast step of Algorithm 2 costs: each vertex of
  /// the previous strategy floods its new estimate within 2r+1 hops.
  std::int64_t weight_broadcast_messages(std::span<const int> prev_winners);

 private:
  int ball_size(int v, int radius);

  const Graph& h_;
  DistributedPtasConfig cfg_;
  BranchAndBoundMwisSolver exact_;
  GreedyMwisSolver greedy_;
  BfsScratch scratch_;
  /// radius -> per-vertex |J_radius(v)| (-1 = not yet computed).
  std::unordered_map<int, std::vector<int>> ball_size_cache_;
};

}  // namespace mhca
