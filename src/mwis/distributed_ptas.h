// Distributed robust PTAS — lockstep engine (paper Algorithm 3).
//
// This class simulates the per-vertex protocol synchronously ("lockstep"):
// each mini-round it (1) elects LocalLeaders — Candidates whose weight is
// maximal among Candidates within their (2r+1)-hop neighborhood, (2) lets
// every leader solve local MWIS over the Candidates in its r-hop ball and
// mark them Winner/Loser, and (3) accounts for the messages the real
// protocol would flood (leader declaration to 2r+1 hops, determination
// results to 3r+1 hops). Because any two leaders are at hop distance
// ≥ 2r+2, their r-hop candidate sets are disjoint and non-adjacent, so the
// union of local MWISs stays independent (Theorem 3).
//
// The message-level implementation of the same protocol lives in src/net;
// integration tests check that both produce identical decisions. Benchmarks
// use this engine (it avoids materializing floods).
//
// Each mini-round is structured gather → solve → apply: candidate sets for
// every leader are collected first, then all leaders' local solves run
// (disjointness makes them embarrassingly parallel — `parallelism` fans
// them across a thread pool with per-worker scratch, leader-order
// deterministic: results are applied sequentially in election order, so
// winners, weights, and message traces are byte-identical at any
// parallelism), then statuses/messages are updated.
//
// The graph never changes between decision slots — only the weights do — so
// by default the constructor precomputes a NeighborhoodCache (per-vertex
// r-hop and (2r+1)-hop balls) and `run()` walks those cached spans: leader
// election checks each Candidate's election ball directly (equivalent to
// the seed's (2r+1) rounds of max-relaxation, which compute exactly the
// ball maxima a real flood would propagate), and local solves read cached
// r-balls instead of re-running BFS. The cached election is additionally
// structure-of-arrays and incremental: candidate weights live in a flat
// array of order-preserving 64-bit keys scanned with a blockwise
// branch-light max, and across mini-rounds only candidates whose election
// ball saw a status flip are rescanned — an unchanged ball means an
// unchanged maximum, so last round's "not a leader" verdict stands (see
// elect_by_cache). Message *accounting* is unchanged: it still charges the
// real flood sizes. `use_decision_cache = false` restores the seed
// re-derivation path (kept for equivalence tests and benches); the
// local-solve *algorithm* is shared by both paths, so their decisions are
// byte-identical unconditionally — node-cap aborts and weight ties
// included.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "mwis/mwis.h"

namespace mhca {

/// Protocol status of a virtual vertex (paper §IV-C). LocalLeader is a
/// transient within-mini-round role of a Candidate, not a stored status.
enum class VertexStatus : std::uint8_t { kCandidate, kWinner, kLoser };

/// Which solver a LocalLeader runs on its r-hop candidate set.
enum class LocalSolverKind { kExact, kGreedy };

struct DistributedPtasConfig {
  int r = 2;                 ///< Paper's simulations use r = 2.
  int max_mini_rounds = 0;   ///< D; 0 = run until every vertex is marked.
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  /// Exact-local effort cap per solve. Tuned for the enhanced search
  /// (reductions + component split + refined bound): the typical local
  /// solve completes exactly well under it, the hard first-mini-round
  /// balls at r >= 3 fall back to the anytime contract (measured < 0.7%
  /// decision-weight loss vs unlimited at n=800, r=3), and per-slot
  /// decision latency stays bounded — the paper's robustness only needs a
  /// β-approximate local oracle. Raise for offline/optimum-quality runs.
  std::int64_t bnb_node_cap = kDefaultBnbNodeCap;
  bool count_messages = false;          ///< Track flood sizes (costs BFS).
  /// Precompute ball structure once and reuse solver scratch across local
  /// solves. False = per-decision re-derivation exactly as the seed
  /// implementation (same results either way, slower).
  bool use_decision_cache = true;
  /// Fan independent per-leader local solves of one mini-round across
  /// worker threads (cached path, exact solver only). 0 = one worker per
  /// hardware thread, 1 = inline. Deterministic at any setting.
  int local_solve_parallelism = 0;
  /// Reuse the per-ball clique cover memoized in the NeighborhoodCache
  /// (rebuilt per solve on the seed path — identical either way). Off by
  /// default: the weight-free partition is a measurably weaker bound than
  /// the per-solve weight-descending cover on hard balls (see
  /// src/mwis/README.md); enable where cover construction dominates.
  bool use_memoized_covers = false;
  bool collect_stage_times = false;     ///< Accumulate per-stage timings.
  /// Worker threads for the one-time NeighborhoodCache build (count-then-
  /// fill, byte-identical at any setting). 0 = MHCA_CACHE_BUILD_WORKERS or
  /// one per hardware thread, 1 = the serial single-pass build.
  int cache_build_parallelism = 0;
};

/// Per-mini-round trace record (drives the Fig. 6 reproduction).
struct MiniRoundRecord {
  int mini_round = 0;          ///< 1-based.
  int leaders = 0;
  int new_winners = 0;
  int new_losers = 0;
  int candidates_remaining = 0;
  double cumulative_weight = 0.0;  ///< Summed weight of all winners so far.
  std::int64_t messages = 0;       ///< Messages flooded this mini-round.
};

struct DistributedPtasResult {
  std::vector<int> winners;   ///< Final independent set (sorted).
  double weight = 0.0;
  bool all_marked = false;    ///< Every vertex reached Winner/Loser.
  int mini_rounds_used = 0;
  std::vector<MiniRoundRecord> mini_rounds;
  std::int64_t total_messages = 0;
  std::int64_t total_mini_timeslots = 0;
  std::int64_t solver_nodes_explored = 0;
  /// True iff every exact-solver local solve completed within the node cap
  /// (always true for the greedy local solver).
  bool all_local_solves_exact = true;
};

/// Wall-clock spent per decision stage, accumulated across `run()` calls
/// while `collect_stage_times` is set (see `stage_times()`). The buckets
/// are *total*: `setup` + the four protocol stages + `validate` + `other`
/// account for the whole `run()` call (`other` is the measured remainder —
/// loop bookkeeping, record pushes, timer overhead), so Σ buckets ≈ the
/// wall-clock a caller measures around `run()`. bench_decision_path asserts
/// ≥95% coverage per cell; an untimed hot spot (like the former O(W²)
/// winner validation, 742 ms of invisible time at 50k vertices) now shows
/// up in `validate`/`other` instead of vanishing.
struct DecisionStageTimes {
  double setup_ms = 0.0;     ///< Status init + SoA election key fill.
  double election_ms = 0.0;  ///< Leader election.
  double gather_ms = 0.0;    ///< Ball lookup/BFS + candidate + cover gather.
  double solve_ms = 0.0;     ///< Local MWIS solves.
  double apply_ms = 0.0;     ///< Status updates + message accounting.
  double validate_ms = 0.0;  ///< Winner sort + independent-set check.
  double other_ms = 0.0;     ///< run() remainder outside the named buckets.

  double total_ms() const {
    return setup_ms + election_ms + gather_ms + solve_ms + apply_ms +
           validate_ms + other_ms;
  }
};

class DistributedRobustPtas {
 public:
  /// The graph reference must outlive this object. The graph must not be
  /// mutated afterwards when the decision cache is enabled.
  explicit DistributedRobustPtas(const Graph& h,
                                 DistributedPtasConfig cfg = {});

  const DistributedPtasConfig& config() const { return cfg_; }

  /// The precomputed ball structure (unbuilt if use_decision_cache=false).
  const NeighborhoodCache& neighborhood_cache() const { return cache_; }

  /// Run one full strategy decision over the given vertex weights.
  /// `active` is a per-vertex activity mask (dynamics; empty = all active):
  /// inactive vertices start the decision as Losers — they never become
  /// candidates, leaders, or winners, exactly as a node that is off the air
  /// cannot participate in the protocol.
  DistributedPtasResult run(std::span<const double> weights,
                            std::span<const char> active = {});

  /// The graph this engine reads just changed (src/dynamics): `touched` are
  /// the H vertices incident to an added/removed edge. Re-synchronizes the
  /// NeighborhoodCache by scoped invalidation (balls within 2r+1 hops of a
  /// touched vertex, old or new graph), and scope-invalidates the lazily
  /// memoized flood ball sizes the same way: only vertices within radius-k
  /// hops of `touched` on the *new* graph can have a changed |J_k| (the
  /// touched set contains both endpoints of every removed edge, so any
  /// old-graph path from a touched vertex survives from its last removed
  /// edge on — old-graph reach is a subset of new-graph reach). Decisions
  /// after this call are byte-identical to a freshly constructed engine
  /// (fuzzed by tests/dynamics_differential_test.cc).
  void on_graph_delta(std::span<const int> touched);

  /// Messages the Weight-Broadcast step of Algorithm 2 costs: each vertex of
  /// the previous strategy floods its new estimate within 2r+1 hops.
  std::int64_t weight_broadcast_messages(std::span<const int> prev_winners);

  const DecisionStageTimes& stage_times() const { return stage_times_; }
  void reset_stage_times() { stage_times_ = {}; }

 private:
  int ball_size(int v, int radius);

  /// Seed election: (2r+1) rounds of max-relaxation over the adjacency
  /// structure — exactly the information a real flood would propagate —
  /// with ties broken by vertex id (the paper assumes distinct weights).
  void elect_by_relaxation(std::span<const double> weights,
                           const std::vector<VertexStatus>& status,
                           std::vector<int>& leaders);

  /// Cached election: a Candidate leads iff no Candidate in its cached
  /// (2r+1)-hop ball has a larger key. Identical leader set by construction.
  ///
  /// Keys live in a structure-of-arrays `election_keys_` of order-preserving
  /// 64-bit encodings (0 = not a candidate), so the ball scan is a
  /// branch-light blockwise max over one flat array instead of per-member
  /// status checks and double compares. Across mini-rounds the election is
  /// *incremental and event-driven* via blocker certificates: when a scan
  /// finds a ball member outranking v, v is chained onto that blocker's
  /// rescan list and not looked at again while the blocker lives (a live
  /// blocker still outranks v, so v still cannot lead). When a vertex
  /// leaves candidacy, exactly its chained candidates are re-examined — and
  /// a rescan *resumes* where the last scan stopped, because keys only
  /// decrease within a decision, so the already-scanned prefix can never
  /// block again. Scans run in three tiers of increasing reach and memory
  /// footprint (CSR neighbor row, r-ball, election ball). Each candidate
  /// pays at most one amortized pass per tier per decision, and rounds
  /// after the first cost O(status flips + rescans), not O(candidates).
  /// `first_round` scans everyone.
  void elect_by_cache(const std::vector<VertexStatus>& status,
                      std::vector<int>& leaders, bool first_round);

  /// Collect, for every elected leader, the Candidates of its r-ball (and
  /// their memoized clique ids when enabled) into the flat gather buffers.
  void gather_local_instances(const std::vector<int>& leaders,
                              const std::vector<VertexStatus>& status);

  /// Solve every gathered instance (exact solves fan out across workers on
  /// the cached path), filling solve_results_ leader by leader.
  void solve_local_instances(const std::vector<int>& leaders,
                             std::span<const double> weights);

  const Graph& h_;
  DistributedPtasConfig cfg_;
  BranchAndBoundMwisSolver exact_;
  GreedyMwisSolver greedy_;
  BfsScratch scratch_;
  NeighborhoodCache cache_;  ///< Built once iff cfg_.use_decision_cache.
  /// radius -> per-vertex |J_radius(v)| (-1 = not yet computed). Serves the
  /// radii the cache does not store (the 3r+2 LB flood).
  std::unordered_map<int, std::vector<int>> ball_size_cache_;
  // run() working buffers, reused across decision slots.
  std::vector<std::pair<double, int>> relax_;
  std::vector<std::pair<double, int>> relax_next_;
  // Incremental SoA election state (cached path; see elect_by_cache).
  // Allocated once in the constructor and reset *lazily* per decision:
  // run() bumps `soa_epoch_` instead of reassigning the arrays, and the
  // first touch of a vertex in a decision (its classify() or its first
  // blockee chaining on) stamps it and clears its chain head and cursors —
  // so per-decision reset cost scales with the vertices actually touched,
  // not O(n) writes across five arrays. `election_keys_` keeps a stronger
  // invariant instead of a stamp: it is all-zero *between* decisions
  // (every status flip zeroes its key in the apply phase; an early exit on
  // the mini-round budget zeroes the leftover candidates before
  // returning), so the per-decision fill writes only candidate keys.
  std::vector<std::uint64_t> election_keys_;  ///< 0 = not a candidate.
  std::vector<int> changed_;          ///< Status flips of this mini-round.
  std::vector<int> died_;             ///< Last round's flips (rescan seeds).
  std::vector<int> chain_head_;       ///< First candidate blocked by vertex.
  std::vector<int> chain_next_;       ///< Next candidate sharing the blocker.
  std::vector<std::uint64_t> has_chain_;  ///< Bit per vertex: chain nonempty.
  std::vector<int> rescan_buf_;       ///< Per-round rescan worklist.
  /// Per-candidate scan resume indices, one per tier (neighbors / r-ball /
  /// election ball), packed together so a rescan touches one cache line.
  struct ScanCursor {
    int nbr = 0;
    int rball = 0;
    int eball = 0;
  };
  std::vector<ScanCursor> cursor_;
  /// Per-vertex decision stamp: cursor_/chain_head_ entries are valid only
  /// where soa_stamp_[v] == soa_epoch_ (see the lazy-reset note above).
  std::vector<std::uint32_t> soa_stamp_;
  std::uint32_t soa_epoch_ = 0;
  std::vector<int> reach_buf_;           ///< on_graph_delta invalidation.
  std::vector<int> gather_cands_;        ///< Per-leader candidates, flat.
  std::vector<int> gather_cover_ids_;    ///< Aligned clique ids (memo mode).
  std::vector<std::size_t> gather_offsets_;
  std::vector<int> gather_cover_counts_;
  std::vector<MwisResult> solve_results_;
  std::vector<SolveScratch> worker_scratch_;
  std::vector<int> ball_buf_;            ///< Seed-path BFS ball.
  std::vector<int> cover_buf_;           ///< Seed-path fresh ball cover.
  DecisionStageTimes stage_times_;
};

}  // namespace mhca
