// Centralized robust PTAS for MWIS (Nieberg, Hurink & Kern; paper §IV-B).
//
// Starting from the max-weight remaining vertex v, grow balls J_r(v) in the
// *remaining* graph while W(MWIS(J_{r+1})) > ρ · W(MWIS(J_r)). At the first
// violation r̄, harvest S = MWIS(J_{r̄}(v)), delete the closed neighborhood
// N[S], and repeat. The union of harvested sets is independent and a
// ρ-approximation (ρ = 1 + ε). On growth-bounded graphs (unit-disk G, and
// the extended graph H per Theorem 2) the growth stops at a constant r̄ with
// ρ^r̄ ≤ (2r̄+1)² (resp. M·(2r̄+1)² on H).
//
// Crucially the algorithm needs *no geometry* — only adjacency — which is
// the property the paper exploits for its distributed variant.
#pragma once

#include <cstdint>

#include "mwis/branch_and_bound.h"
#include "mwis/mwis.h"

namespace mhca {

class RobustPtasSolver : public MwisSolver {
 public:
  /// epsilon: approximation slack (ρ = 1 + ε).
  /// r_cap: safety bound on ball growth (theory guarantees constant r̄; the
  ///        cap keeps local instances tractable if ε is tiny).
  /// bnb_node_cap: effort cap for the inner exact solver.
  explicit RobustPtasSolver(double epsilon = 1.0, int r_cap = 4,
                            std::int64_t bnb_node_cap = 2'000'000);

  std::string name() const override { return "robust-ptas"; }

  double rho() const { return rho_; }

  MwisResult solve(const Graph& g, std::span<const double> weights,
                   std::span<const int> candidates) override;

  /// Largest ball radius r̄ reached over all harvests of the last solve.
  int last_max_radius() const { return last_max_radius_; }

 private:
  double rho_;
  int r_cap_;
  BranchAndBoundMwisSolver inner_;
  int last_max_radius_ = 0;
};

}  // namespace mhca
