#include "mwis/robust_ptas.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca {
namespace {

/// BFS ball J_r(v) restricted to alive vertices (the "remaining graph").
std::vector<int> restricted_ball(const Graph& g, const std::vector<char>& alive,
                                 int v, int r) {
  std::vector<int> out;
  std::vector<int> dist(static_cast<std::size_t>(g.size()), -1);
  std::vector<int> queue;
  queue.push_back(v);
  dist[static_cast<std::size_t>(v)] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    const int x = queue[head++];
    out.push_back(x);
    const int dx = dist[static_cast<std::size_t>(x)];
    if (dx == r) continue;
    for (int u : g.neighbors(x)) {
      auto ui = static_cast<std::size_t>(u);
      if (alive[ui] && dist[ui] < 0) {
        dist[ui] = dx + 1;
        queue.push_back(u);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

RobustPtasSolver::RobustPtasSolver(double epsilon, int r_cap,
                                   std::int64_t bnb_node_cap)
    : rho_(1.0 + epsilon), r_cap_(r_cap), inner_(bnb_node_cap) {
  MHCA_ASSERT(epsilon > 0.0, "epsilon must be positive");
  MHCA_ASSERT(r_cap >= 1, "r_cap must be at least 1");
}

MwisResult RobustPtasSolver::solve(const Graph& g,
                                   std::span<const double> weights,
                                   std::span<const int> candidates) {
  std::vector<char> alive(static_cast<std::size_t>(g.size()), 0);
  int alive_count = 0;
  for (int v : candidates) {
    MHCA_ASSERT(v >= 0 && v < g.size(), "candidate out of range");
    if (!alive[static_cast<std::size_t>(v)]) {
      alive[static_cast<std::size_t>(v)] = 1;
      ++alive_count;
    }
  }

  MwisResult result;
  result.exact = false;
  last_max_radius_ = 0;

  while (alive_count > 0) {
    // Max-weight remaining vertex (ties by id for determinism).
    int vmax = -1;
    for (int v = 0; v < g.size(); ++v) {
      if (!alive[static_cast<std::size_t>(v)]) continue;
      if (vmax < 0 ||
          weights[static_cast<std::size_t>(v)] >
              weights[static_cast<std::size_t>(vmax)])
        vmax = v;
    }

    // Grow the ball until the robustness criterion is violated.
    MwisResult cur;
    cur.vertices = {vmax};
    cur.weight = weights[static_cast<std::size_t>(vmax)];
    int r = 0;
    while (r < r_cap_) {
      const std::vector<int> ball =
          restricted_ball(g, alive, vmax, r + 1);
      MwisResult next = inner_.solve(g, weights, ball);
      result.nodes_explored += next.nodes_explored;
      if (next.weight <= rho_ * cur.weight) break;  // r̄ found, harvest cur
      cur = std::move(next);
      ++r;
    }
    last_max_radius_ = std::max(last_max_radius_, r);

    // Harvest cur and delete its closed neighborhood from the graph.
    for (int v : cur.vertices) {
      result.vertices.push_back(v);
      result.weight += weights[static_cast<std::size_t>(v)];
      auto vi = static_cast<std::size_t>(v);
      if (alive[vi]) {
        alive[vi] = 0;
        --alive_count;
      }
      for (int u : g.neighbors(v)) {
        auto ui = static_cast<std::size_t>(u);
        if (alive[ui]) {
          alive[ui] = 0;
          --alive_count;
        }
      }
    }
  }
  std::sort(result.vertices.begin(), result.vertices.end());
  return result;
}

}  // namespace mhca
