// Maximum Weighted Independent Set solver interface.
//
// The strategy-decision step of the channel-access scheme (paper eq. 4) is a
// MWIS instance over the extended conflict graph H with the learned indices
// as weights. All solvers share this interface so the learning layer can be
// paired with any oracle (exact, greedy, robust PTAS, distributed PTAS) —
// Theorem 1 guarantees bounded β-regret for any β-approximation oracle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mhca {

/// Default per-solve branch-and-bound effort cap shared by every decision
/// path (lockstep engine, message-level runtime, simulator, facade). This is
/// the ONLY place the default lives: DistributedPtasConfig, SimulationConfig,
/// net::NetConfig, ChannelAccessConfig and scenario::SolverSpec all
/// initialize from it, and scenario.cc static_asserts they stay in sync —
/// the PR-2 drift (facade still at 200'000 while the solver moved to 2'000)
/// cannot recur. Tuned for the enhanced search; see
/// DistributedPtasConfig::bnb_node_cap for the rationale.
inline constexpr std::int64_t kDefaultBnbNodeCap = 2'000;

/// Result of one MWIS solve.
struct MwisResult {
  std::vector<int> vertices;       ///< The independent set (sorted by id).
  double weight = 0.0;             ///< Its total weight.
  bool exact = true;               ///< False if a cap/approximation kicked in.
  std::int64_t nodes_explored = 0; ///< Search-effort statistic.
};

/// Abstract MWIS solver over a subset of a graph's vertices.
class MwisSolver {
 public:
  virtual ~MwisSolver() = default;

  virtual std::string name() const = 0;

  /// Solve MWIS restricted to `candidates` (a subset of g's vertices;
  /// weights are indexed by *original* vertex id). Must return an
  /// independent set that is a subset of `candidates`.
  virtual MwisResult solve(const Graph& g, std::span<const double> weights,
                           std::span<const int> candidates) = 0;

  /// Solve over all vertices of g.
  MwisResult solve_all(const Graph& g, std::span<const double> weights) {
    std::vector<int> all(static_cast<std::size_t>(g.size()));
    for (int v = 0; v < g.size(); ++v) all[static_cast<std::size_t>(v)] = v;
    return solve(g, weights, all);
  }
};

}  // namespace mhca
