#include "mwis/distributed_ptas.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/cpufeatures.h"
#include "util/parallel.h"
#include "util/simd_scan.h"

namespace mhca {
namespace {

/// Election key: (weight, -id) lexicographic, so higher weight wins and the
/// lower id breaks exact ties deterministically.
using Key = std::pair<double, int>;

Key key_of(int v, std::span<const double> w) {
  return {w[static_cast<std::size_t>(v)], -v};
}

constexpr Key kMinKey{-std::numeric_limits<double>::infinity(),
                      std::numeric_limits<int>::min()};

/// Order-preserving 64-bit encoding of a weight: for non-NaN doubles,
/// enc(a) < enc(b) ⟺ a < b and enc(a) == enc(b) ⟺ a == b (-0.0 is
/// collapsed onto +0.0 first, matching `==`). Every real weight — even
/// -inf, which maps to 0x000fffffffffffff — encodes strictly above 0, so 0
/// serves as the "not a candidate" sentinel in the SoA key array.
std::uint64_t election_key(double w) {
  if (w == 0.0) w = 0.0;
  const auto b = std::bit_cast<std::uint64_t>(w);
  return (b >> 63) != 0 ? ~b : (b | (std::uint64_t{1} << 63));
}

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

DistributedRobustPtas::DistributedRobustPtas(const Graph& h,
                                             DistributedPtasConfig cfg)
    : h_(h),
      cfg_(cfg),
      exact_(cfg.bnb_node_cap),  // solves go through solve_with_scratch
      scratch_(h.size()) {
  MHCA_ASSERT(cfg_.r >= 1, "r must be at least 1");
  MHCA_ASSERT(cfg_.max_mini_rounds >= 0, "negative mini-round budget");
  MHCA_ASSERT(cfg_.local_solve_parallelism >= 0, "negative parallelism");
  MHCA_ASSERT(cfg_.cache_build_parallelism >= 0, "negative parallelism");
  if (cfg_.use_decision_cache) {
    cache_ = NeighborhoodCache(h, cfg_.r, cfg_.use_memoized_covers,
                               cfg_.cache_build_parallelism);
    // SoA election state is allocated once here and epoch-reset per
    // decision (see the header note); the graph's vertex count is fixed
    // for the engine's lifetime.
    const auto n = static_cast<std::size_t>(h.size());
    election_keys_.assign(n, 0);
    chain_head_.assign(n, -1);
    chain_next_.assign(n, -1);
    has_chain_.assign((n + 63) / 64, 0);
    cursor_.assign(n, {});
    soa_stamp_.assign(n, 0);
  }
}

int DistributedRobustPtas::ball_size(int v, int radius) {
  if (cache_.built()) {
    if (radius == cfg_.r) return cache_.r_ball_size(v);
    if (radius == 2 * cfg_.r + 1) return cache_.election_ball_size(v);
  }
  auto& sizes = ball_size_cache_[radius];
  if (sizes.empty()) sizes.assign(static_cast<std::size_t>(h_.size()), -1);
  int& s = sizes[static_cast<std::size_t>(v)];
  if (s < 0) {
    std::vector<int> ball;
    scratch_.k_hop_neighborhood(h_, v, radius, ball);
    s = static_cast<int>(ball.size());
  }
  return s;
}

std::int64_t DistributedRobustPtas::weight_broadcast_messages(
    std::span<const int> prev_winners) {
  std::int64_t msgs = 0;
  for (int v : prev_winners) msgs += ball_size(v, 2 * cfg_.r + 1);
  return msgs;
}

void DistributedRobustPtas::elect_by_relaxation(
    std::span<const double> weights, const std::vector<VertexStatus>& status,
    std::vector<int>& leaders) {
  const int n = h_.size();
  const int election_hops = 2 * cfg_.r + 1;
  relax_.resize(static_cast<std::size_t>(n));
  relax_next_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    relax_[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate
            ? key_of(v, weights)
            : kMinKey;
  for (int step = 0; step < election_hops; ++step) {
    for (int v = 0; v < n; ++v) {
      Key best = relax_[static_cast<std::size_t>(v)];
      for (int u : h_.neighbors(v))
        best = std::max(best, relax_[static_cast<std::size_t>(u)]);
      relax_next_[static_cast<std::size_t>(v)] = best;
    }
    std::swap(relax_, relax_next_);
  }
  for (int v = 0; v < n; ++v) {
    if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
      continue;
    if (relax_[static_cast<std::size_t>(v)] == key_of(v, weights))
      leaders.push_back(v);
  }
}

void DistributedRobustPtas::elect_by_cache(
    const std::vector<VertexStatus>& status, std::vector<int>& leaders,
    bool first_round) {
  const std::uint64_t* keys = election_keys_.data();
  // SIMD dispatch level, resolved once per election (one relaxed load). The
  // vector kernels are pure block filters — every flagged block is
  // re-inspected scalar with the exact predicate — so the blocker positions
  // (hence decisions) are byte-identical at every level
  // (tests/tiered_simd_differential_test.cc sweeps them).
  const util::SimdLevel simd = util::simd_level();
  const std::size_t simd_bw = util::simd_block_width(simd);

  // Lazy per-decision reset: the first touch of a vertex this decision
  // clears its chain head and scan cursors; later touches are no-ops. This
  // replaces five O(n) array reassignments per decision with
  // O(vertices actually classified or chained onto) stamped writes.
  const auto touch = [&](int u) {
    const auto ui = static_cast<std::size_t>(u);
    if (soa_stamp_[ui] != soa_epoch_) {
      soa_stamp_[ui] = soa_epoch_;
      chain_head_[ui] = -1;
      cursor_[ui] = {};
    }
  };

  // Scan candidate v for a blocking element and either record the blocker
  // (chaining v onto the blocker's rescan list) or crown v a leader.
  //
  // An element blocks v iff its key beats kv, or ties it with a lower id
  // (balls are ascending, so a tied element before v's own position has
  // the lower id). Keys only ever *decrease* within a decision (marked
  // vertices drop to the sentinel), so every element scanned past without
  // blocking can never block later — rescans resume where the last scan
  // stopped instead of re-reading the dead prefix; each candidate pays at
  // most one amortized pass per tier per decision. Tier 1 is the r-ball
  // (a subset of the election ball at a quarter of the memory footprint):
  // virtually every non-leader finds a blocker among these nearest
  // members; only candidates whose r-ball is exhausted pay tier 2, the
  // full election ball.
  const auto classify = [&](int v) {
    const std::uint64_t kv = keys[v];
    // First blocking position in arr at or after `from`, or arr.size().
    // The common element is strictly below kv — one compare; only the rare
    // >= kv element pays the tie-break test, and the deep tail runs a
    // blockwise branch-light max (one rarely-taken branch per 4 members; a
    // block whose max only *ties* kv still needs inspecting — it may hold
    // a tied lower id, or just v itself).
    const auto scan_for_blocker = [&](std::span<const int> arr,
                                      std::size_t from) -> std::size_t {
      const std::size_t sz = arr.size();
      std::size_t i = from;
      const std::size_t prefix = std::min<std::size_t>(sz, i + 8);
      for (; i < prefix; ++i) {
        const std::uint64_t k = keys[arr[i]];
        if (k < kv) continue;
        if (k > kv || arr[i] < v) return i;
      }
      if (simd_bw != 0) {
        while (true) {
          i = util::simd_skip_below(keys, arr.data(), i, sz, kv, simd);
          if (i + simd_bw > sz) break;
          // The block holds some key >= kv: inspect it scalar (a tie that
          // is v itself, or a higher id, does not block — keep going).
          for (std::size_t j = i; j < i + simd_bw; ++j) {
            const std::uint64_t k = keys[arr[j]];
            if (k < kv) continue;
            if (k > kv || arr[j] < v) return j;
          }
          i += simd_bw;
        }
      } else
      for (; i + 4 <= sz; i += 4) {
        const std::uint64_t m01 = std::max(keys[arr[i]], keys[arr[i + 1]]);
        const std::uint64_t m23 =
            std::max(keys[arr[i + 2]], keys[arr[i + 3]]);
        if (std::max(m01, m23) < kv) continue;
        for (std::size_t j = i; j < i + 4; ++j) {
          const std::uint64_t k = keys[arr[j]];
          if (k < kv) continue;
          if (k > kv || arr[j] < v) return j;
        }
      }
      for (; i < sz; ++i) {
        const std::uint64_t k = keys[arr[i]];
        if (k < kv) continue;
        if (k > kv || arr[i] < v) return i;
      }
      return sz;
    };
    const auto chain_onto = [&](int b) {
      touch(b);  // a stale chain head from a previous decision must not leak
      const auto bi = static_cast<std::size_t>(b);
      chain_next_[static_cast<std::size_t>(v)] = chain_head_[bi];
      chain_head_[bi] = v;
      has_chain_[bi / 64] |= std::uint64_t{1} << (bi % 64);
    };
    touch(v);
    ScanCursor& cur = cursor_[static_cast<std::size_t>(v)];
    // Tier 0: immediate neighbors. Roughly deg/(deg+1) of all candidates
    // are outranked by a 1-hop neighbor, and the CSR row is a compact
    // shared array (2|E| ints) instead of the multi-megabyte ball storage.
    const auto nbrs = h_.neighbors(v);
    if (static_cast<std::size_t>(cur.nbr) < nbrs.size()) {
      const std::size_t pos =
          scan_for_blocker(nbrs, static_cast<std::size_t>(cur.nbr));
      cur.nbr = static_cast<int>(pos);
      if (pos < nbrs.size()) {
        chain_onto(nbrs[pos]);
        return;
      }
    }
    // Tiny r-balls (small r / sparse regions) aren't worth the extra
    // resume cursor — the election ball itself is only a few cache lines.
    // The gate depends only on the (static) ball size, so a candidate's
    // tier choice is stable across rounds and the resume invariants hold.
    const auto rball = cache_.r_ball(v);
    if (rball.size() >= 24 && static_cast<std::size_t>(cur.rball) < rball.size()) {
      const std::size_t pos =
          scan_for_blocker(rball, static_cast<std::size_t>(cur.rball));
      cur.rball = static_cast<int>(pos);
      if (pos < rball.size()) {
        chain_onto(rball[pos]);
        return;
      }
    }
    if (cache_.eball_tier() == NeighborhoodCache::EballTier::kExplicit) {
      const auto ball = cache_.election_ball(v);
      const std::size_t pos =
          scan_for_blocker(ball, static_cast<std::size_t>(cur.eball));
      if (pos == ball.size()) {
        leaders.push_back(v);
      } else {
        cur.eball = static_cast<int>(pos);
        chain_onto(ball[pos]);
      }
      return;
    }
    // Implicit e-ball tier: the (2r+1)-ball is not stored — enumerate it
    // with an early-exit BFS and stop at the first blocker. No resume
    // cursor here (the traversal is fresh each time), but verdicts are
    // unchanged: a candidate leads iff *no* live ball member outranks it,
    // which is scan-order independent, and whichever blocker gets chained
    // only schedules the rescan — keys only decrease within a decision, so
    // v is re-examined no later than the death of its last blocker either
    // way. Tier 2 is rare (the r-ball already blocks nearly everyone), so
    // the BFS re-walk trades a negligible slice of election time for the
    // ~n·|J_{2r+1}| ints the explicit spans would occupy.
    const int blocker = scratch_.k_hop_find(
        h_, v, 2 * cfg_.r + 1, [&](int u) {
          const std::uint64_t k = keys[u];
          return k > kv || (k == kv && u < v);
        });
    if (blocker < 0)
      leaders.push_back(v);
    else
      chain_onto(blocker);
  };

  if (first_round) {
    const int n = h_.size();
    for (int v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate)
        classify(v);
    }
    return;  // ascending by construction
  }
  // Later rounds are event-driven: only candidates whose blocker died last
  // mini-round can change verdict (an alive blocker still outranks them),
  // and those are exactly the chains of the vertices that left candidacy.
  // Chain nodes are saved before classify() re-chains them, so the walk
  // survives the mutation; dead chain members are skipped (their own chain,
  // if any, is walked when their death is processed). The `has_chain_`
  // bitmap pre-filters deaths with no blockees: the gather/solve/apply
  // phases evict the election arrays between rounds, and a few hundred
  // bytes of bitmap re-warm far cheaper than one cold chain_head_ line per
  // death.
  // The gather/solve phases of the previous round evicted the election
  // arrays, so the rescans' memory chain (cursor -> row start -> keys) is
  // all cold, dependent misses. Collecting the worklist first and running
  // a short prefetch lookahead overlaps them instead of serializing.
  rescan_buf_.clear();
  for (const int c : died_) {
    const auto ci = static_cast<std::size_t>(c);
    if (((has_chain_[ci / 64] >> (ci % 64)) & 1u) == 0) continue;
    // has_chain_ bits are never bulk-cleared, so one may survive from an
    // earlier decision; a chain head is only meaningful where the vertex
    // carries this decision's stamp (touch() resets the head on first use).
    if (soa_stamp_[ci] != soa_epoch_) continue;
    has_chain_[ci / 64] &= ~(std::uint64_t{1} << (ci % 64));
    int w = chain_head_[ci];
    chain_head_[ci] = -1;
    while (w >= 0) {
      const int nw = chain_next_[static_cast<std::size_t>(w)];
      if (status[static_cast<std::size_t>(w)] == VertexStatus::kCandidate) {
        rescan_buf_.push_back(w);
        __builtin_prefetch(&cursor_[static_cast<std::size_t>(w)]);
        __builtin_prefetch(&election_keys_[static_cast<std::size_t>(w)]);
      }
      w = nw;
    }
  }
  constexpr std::size_t kRowAhead = 4;
  constexpr std::size_t kKeyAhead = 2;
  for (std::size_t i = 0; i < rescan_buf_.size(); ++i) {
    if (i + kRowAhead < rescan_buf_.size()) {
      // Cursor lines were prefetched during collection; by now they are
      // close enough to read, so aim the next prefetch at the scan's first
      // target: the candidate's CSR neighbor segment at its resume point.
      const int w2 = rescan_buf_[i + kRowAhead];
      const auto nb = h_.neighbors(w2);
      const auto at = static_cast<std::size_t>(
          cursor_[static_cast<std::size_t>(w2)].nbr);
      if (at < nb.size()) __builtin_prefetch(nb.data() + at);
    }
    if (i + kKeyAhead < rescan_buf_.size()) {
      // Two steps behind the row prefetch the segment is warm: read the
      // first few neighbor ids and prefetch their keys — the key array is
      // freshly evicted by the solve phase, and these gathers are the
      // scan's serial dependent loads.
      const int w1 = rescan_buf_[i + kKeyAhead];
      const auto nb = h_.neighbors(w1);
      const auto at = static_cast<std::size_t>(
          cursor_[static_cast<std::size_t>(w1)].nbr);
      const std::size_t end = std::min(nb.size(), at + 4);
      for (std::size_t k = at; k < end; ++k)
        __builtin_prefetch(&election_keys_[static_cast<std::size_t>(nb[k])]);
    }
    classify(rescan_buf_[i]);
  }
  // Chain-walk order is arbitrary; the protocol (and the seed path) elect
  // in ascending id order, and apply order is observable.
  std::sort(leaders.begin(), leaders.end());
}

void DistributedRobustPtas::gather_local_instances(
    const std::vector<int>& leaders, const std::vector<VertexStatus>& status) {
  gather_cands_.clear();
  gather_cover_ids_.clear();
  gather_offsets_.clear();
  gather_cover_counts_.assign(leaders.size(), 0);
  gather_offsets_.reserve(leaders.size() + 1);
  gather_offsets_.push_back(0);
  for (std::size_t li = 0; li < leaders.size(); ++li) {
    const int leader = leaders[li];
    std::span<const int> ball;
    std::span<const int> ball_cover;
    if (cache_.built()) {
      ball = cache_.r_ball(leader);
      if (cfg_.use_memoized_covers) {
        ball_cover = cache_.r_ball_cover(leader);
        gather_cover_counts_[li] = cache_.r_ball_clique_count(leader);
      }
    } else {
      scratch_.k_hop_neighborhood(h_, leader, cfg_.r, ball_buf_);
      ball = ball_buf_;
      if (cfg_.use_memoized_covers) {
        // Seed path: rebuild the (weight-free, deterministic) ball cover the
        // cache would have memoized — identical ids by construction.
        gather_cover_counts_[li] =
            NeighborhoodCache::build_ball_cover(h_, ball, cover_buf_);
        ball_cover = cover_buf_;
      }
    }
    for (std::size_t i = 0; i < ball.size(); ++i) {
      const int v = ball[i];
      if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
        continue;
      gather_cands_.push_back(v);
      if (cfg_.use_memoized_covers) gather_cover_ids_.push_back(ball_cover[i]);
    }
    gather_offsets_.push_back(gather_cands_.size());
  }
}

void DistributedRobustPtas::solve_local_instances(
    const std::vector<int>& leaders, std::span<const double> weights) {
  solve_results_.resize(leaders.size());
  const auto instance = [&](std::size_t li) {
    return std::span<const int>(gather_cands_)
        .subspan(gather_offsets_[li],
                 gather_offsets_[li + 1] - gather_offsets_[li]);
  };

  if (cfg_.local_solver == LocalSolverKind::kGreedy) {
    for (std::size_t li = 0; li < leaders.size(); ++li)
      solve_results_[li] = greedy_.solve(h_, weights, instance(li));
    return;
  }

  const auto solve_one = [&](std::size_t li, SolveScratch& scratch,
                             bool cached_path) {
    BnbSolveOptions opts;
    opts.use_adjacency_rows = cached_path;
    if (cfg_.use_memoized_covers) {
      opts.cand_clique_ids =
          std::span<const int>(gather_cover_ids_)
              .subspan(gather_offsets_[li],
                       gather_offsets_[li + 1] - gather_offsets_[li]);
      opts.clique_id_bound = gather_cover_counts_[li];
    }
    solve_results_[li] =
        exact_.solve_with_scratch(h_, weights, instance(li), scratch, opts);
  };

  if (!cache_.built()) {
    // Seed path: allocate fresh working memory per solve, list-scan build.
    for (std::size_t li = 0; li < leaders.size(); ++li) {
      SolveScratch fresh;
      solve_one(li, fresh, /*cached_path=*/false);
    }
    return;
  }

  int workers = cfg_.local_solve_parallelism;
  if (workers == 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers == 0) workers = 1;
  }
  workers = std::min<int>(workers, static_cast<int>(leaders.size()));
  if (static_cast<std::size_t>(workers) > worker_scratch_.size())
    worker_scratch_.resize(static_cast<std::size_t>(workers));
  if (workers <= 1) {
    for (std::size_t li = 0; li < leaders.size(); ++li)
      solve_one(li, worker_scratch_[0], /*cached_path=*/true);
    return;
  }
  // Strided fan-out: worker j owns leaders j, j+W, ... with its own scratch.
  // Output slots are disjoint, so any schedule yields identical results.
  parallel_run(
      workers,
      [&](int j) {
        for (std::size_t li = static_cast<std::size_t>(j);
             li < leaders.size(); li += static_cast<std::size_t>(workers))
          solve_one(li, worker_scratch_[static_cast<std::size_t>(j)],
                    /*cached_path=*/true);
      },
      workers);
}

void DistributedRobustPtas::on_graph_delta(std::span<const int> touched) {
  if (cache_.built()) cache_.apply_delta(h_, touched);
  // Scoped invalidation of the memoized flood ball sizes, mirroring the
  // cache's: |J_k(v)| can only change if v is within k hops of a touched
  // vertex on the old or the new graph, and one BFS on the new graph
  // covers both — `touched` contains both endpoints of every removed
  // edge, so an old-graph path from touched survives intact from its last
  // removed edge on (whose far endpoint is itself touched), making
  // old-graph reach a subset of new-graph reach. The former wholesale
  // clear() re-derived every memoized size after a single-edge delta —
  // O(n · ball) BFS work on the uncached seed path.
  for (auto& [radius, sizes] : ball_size_cache_) {
    scratch_.multi_source_k_hop(h_, touched, radius, reach_buf_);
    for (int v : reach_buf_) sizes[static_cast<std::size_t>(v)] = -1;
  }
}

DistributedPtasResult DistributedRobustPtas::run(
    std::span<const double> weights, std::span<const char> active) {
  const auto t_entry = Clock::now();
  DecisionStageTimes acc;  // this decision's buckets; folded in at the end
  const int n = h_.size();
  MHCA_ASSERT(static_cast<int>(weights.size()) == n, "weight vector mismatch");
  MHCA_ASSERT(active.empty() || static_cast<int>(active.size()) == n,
              "activity mask mismatch");
  const int r = cfg_.r;
  const int election_hops = 2 * r + 1;
  const bool timed = cfg_.collect_stage_times;

  // Tracing (src/obs): one relaxed load per decision; every span below is
  // purely observational — no branch of the protocol depends on `tr`.
  obs::TraceRecorder* const tr = obs::trace();
  if (tr) {
    char a[64];
    std::snprintf(a, sizeof(a), "{\"n\":%d,\"r\":%d}", n, r);
    tr->begin(obs::kTidEngine, "ptas.decision", a);
    tr->begin(obs::kTidEngine, "ptas.setup");
  }

  std::vector<VertexStatus> status(static_cast<std::size_t>(n),
                                   VertexStatus::kCandidate);
  int candidates = n;
  if (!active.empty()) {
    for (int v = 0; v < n; ++v) {
      if (!active[static_cast<std::size_t>(v)]) {
        status[static_cast<std::size_t>(v)] = VertexStatus::kLoser;
        --candidates;
      }
    }
  }

  DistributedPtasResult res;
  std::vector<int> leaders;

  // Cached path: materialize the SoA election keys for this decision;
  // elect_by_cache maintains them incrementally across mini-rounds, fed by
  // the status flips the apply phase records in changed_/died_. The
  // blocker chains and scan cursors are *not* reassigned here — bumping
  // soa_epoch_ invalidates them all, and each vertex's entries reset
  // lazily on first touch (five O(n) array fills used to dominate decision
  // setup at 50k vertices). election_keys_ needs no stamp: it is all-zero
  // between decisions, so the fill below writes candidate keys only.
  const bool cached = cache_.built();
  if (cached) {
    if (++soa_epoch_ == 0) {  // wrap: stale stamps could alias the new epoch
      std::fill(soa_stamp_.begin(), soa_stamp_.end(), 0);
      soa_epoch_ = 1;
    }
    died_.clear();
    for (int v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate)
        election_keys_[static_cast<std::size_t>(v)] =
            election_key(weights[static_cast<std::size_t>(v)]);
    }
  }
  if (tr) tr->end(obs::kTidEngine);  // ptas.setup
  if (timed) acc.setup_ms = ms_since(t_entry);

  int mini_round = 0;
  while (candidates > 0 &&
         (cfg_.max_mini_rounds == 0 || mini_round < cfg_.max_mini_rounds)) {
    ++mini_round;
    MiniRoundRecord rec;
    rec.mini_round = mini_round;

    // --- LocalLeader selection (LS): max over the (2r+1)-hop ball. ---
    auto t0 = Clock::now();
    if (tr) {
      char a[48];
      std::snprintf(a, sizeof(a), "{\"mini_round\":%d}", mini_round);
      tr->begin(obs::kTidEngine, "ptas.election", a);
    }
    leaders.clear();
    if (cached) {
      elect_by_cache(status, leaders, /*first_round=*/mini_round == 1);
    } else {
      elect_by_relaxation(weights, status, leaders);
    }
    MHCA_ASSERT(!leaders.empty(),
                "a candidate of globally maximal weight must elect itself");
    rec.leaders = static_cast<int>(leaders.size());
    if (tr) tr->end(obs::kTidEngine);  // ptas.election
    if (timed) acc.election_ms += ms_since(t0);

    // --- Local MWIS (LMWIS): gather instances, then solve. Leaders' balls
    // are pairwise disjoint and non-adjacent (Theorem 3), so no leader's
    // verdict can change another's instance: gathering everything up front
    // and fanning the solves out is equivalent to the sequential protocol.
    if (timed) t0 = Clock::now();
    if (tr) tr->begin(obs::kTidEngine, "ptas.gather");
    gather_local_instances(leaders, status);
    if (tr) tr->end(obs::kTidEngine);  // ptas.gather
    if (timed) {
      acc.gather_ms += ms_since(t0);
      t0 = Clock::now();
    }
    if (tr) {
      char a[48];
      std::snprintf(a, sizeof(a), "{\"leaders\":%d}", rec.leaders);
      tr->begin(obs::kTidEngine, "ptas.solve", a);
    }
    solve_local_instances(leaders, weights);
    if (tr) tr->end(obs::kTidEngine);  // ptas.solve
    if (timed) {
      acc.solve_ms += ms_since(t0);
      t0 = Clock::now();
    }
    if (tr) tr->begin(obs::kTidEngine, "ptas.apply");

    // --- Status determination (LB), applied in election order. ---
    changed_.clear();
    for (std::size_t li = 0; li < leaders.size(); ++li) {
      const int leader = leaders[li];
      const MwisResult& local = solve_results_[li];
      res.solver_nodes_explored += local.nodes_explored;
      if (cfg_.local_solver == LocalSolverKind::kExact && !local.exact)
        res.all_local_solves_exact = false;
      // Winners first, then every remaining candidate in the ball loses.
      for (int v : local.vertices) {
        status[static_cast<std::size_t>(v)] = VertexStatus::kWinner;
        if (cached) changed_.push_back(v);
        res.winners.push_back(v);
        res.weight += weights[static_cast<std::size_t>(v)];
        --candidates;
        ++rec.new_winners;
      }
      const auto cands_begin = gather_offsets_[li];
      const auto cands_end = gather_offsets_[li + 1];
      for (std::size_t ci = cands_begin; ci < cands_end; ++ci) {
        const int v = gather_cands_[ci];
        if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate) {
          status[static_cast<std::size_t>(v)] = VertexStatus::kLoser;
          if (cached) changed_.push_back(v);
          --candidates;
          ++rec.new_losers;
        }
      }
      // Mirror the centralized PTAS's removal rule: every Candidate
      // adjacent to a fresh Winner becomes a Loser, even if it lies just
      // outside A_r (at distance r+1 from the leader). Without this, a
      // later mini-round could crown a winner conflicting with this one.
      for (int w : local.vertices) {
        for (int u : h_.neighbors(w)) {
          if (status[static_cast<std::size_t>(u)] == VertexStatus::kCandidate) {
            status[static_cast<std::size_t>(u)] = VertexStatus::kLoser;
            if (cached) changed_.push_back(u);
            --candidates;
            ++rec.new_losers;
          }
        }
      }
      if (cfg_.count_messages) {
        rec.messages += ball_size(leader, election_hops);  // LD flood
        rec.messages += ball_size(leader, 3 * r + 2);      // LB flood
      }
    }
    // Election maintenance, O(status flips): a vertex leaving candidacy
    // stops contributing to ball maxima, so its SoA key drops to the
    // sentinel; the flips become the next election's rescan seeds (their
    // chains hold exactly the candidates these deaths may unblock). The
    // next election runs immediately after this loop, so prefetching each
    // death's chain head here hides the misses the solve phase just
    // inflicted on the election arrays.
    if (cached) {
      for (int c : changed_) {
        const auto ci = static_cast<std::size_t>(c);
        election_keys_[ci] = 0;
#if defined(__GNUC__)
        __builtin_prefetch(&has_chain_[ci / 64]);
        __builtin_prefetch(&chain_head_[ci]);
#endif
      }
      std::swap(died_, changed_);
    }
    if (tr) tr->end(obs::kTidEngine);  // ptas.apply
    if (timed) acc.apply_ms += ms_since(t0);

    rec.candidates_remaining = candidates;
    rec.cumulative_weight = res.weight;
    res.total_messages += rec.messages;
    // LS takes 2r+1 mini-timeslots, LB 3r+2 (§IV-C gives 3r+1 for marks at
    // distance <= r; winner-adjacent losers sit one hop further out).
    res.total_mini_timeslots += (2 * r + 1) + (3 * r + 2);
    res.mini_rounds.push_back(rec);
  }

  // An early exit on the mini-round budget leaves unmarked candidates with
  // live keys; restore the all-zero invariant the next decision's key fill
  // relies on.
  if (cached && candidates > 0) {
    for (int v = 0; v < n; ++v) {
      if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate)
        election_keys_[static_cast<std::size_t>(v)] = 0;
    }
  }

  res.mini_rounds_used = mini_round;
  res.all_marked = candidates == 0;
  const auto t_validate = Clock::now();
  if (tr) tr->begin(obs::kTidEngine, "ptas.validate");
  std::sort(res.winners.begin(), res.winners.end());
  MHCA_ASSERT(h_.is_independent_set(res.winners),
              "distributed PTAS produced a conflicting strategy");
  if (tr) tr->end(obs::kTidEngine);  // ptas.validate
  if (timed) {
    acc.validate_ms = ms_since(t_validate);
    // `other` is measured, not assumed: whatever this run spent outside
    // the named buckets (loop bookkeeping, record pushes, timer overhead).
    acc.other_ms =
        std::max(0.0, ms_since(t_entry) - (acc.setup_ms + acc.election_ms +
                                           acc.gather_ms + acc.solve_ms +
                                           acc.apply_ms + acc.validate_ms));
    stage_times_.setup_ms += acc.setup_ms;
    stage_times_.election_ms += acc.election_ms;
    stage_times_.gather_ms += acc.gather_ms;
    stage_times_.solve_ms += acc.solve_ms;
    stage_times_.apply_ms += acc.apply_ms;
    stage_times_.validate_ms += acc.validate_ms;
    stage_times_.other_ms += acc.other_ms;
    // The seventh bucket is a remainder, not an interval — in the timeline
    // it is the gap inside ptas.decision; the instant carries its size.
    if (tr) {
      char a[48];
      std::snprintf(a, sizeof(a), "{\"other_ms\":%.3f}", acc.other_ms);
      tr->instant(obs::kTidEngine, "ptas.other", a);
    }
  }
  if (tr) tr->end(obs::kTidEngine);  // ptas.decision
  return res;
}

}  // namespace mhca
