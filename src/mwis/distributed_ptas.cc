#include "mwis/distributed_ptas.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.h"

namespace mhca {
namespace {

/// Election key: (weight, -id) lexicographic, so higher weight wins and the
/// lower id breaks exact ties deterministically.
using Key = std::pair<double, int>;

Key key_of(int v, std::span<const double> w) {
  return {w[static_cast<std::size_t>(v)], -v};
}

constexpr Key kMinKey{-std::numeric_limits<double>::infinity(),
                      std::numeric_limits<int>::min()};

}  // namespace

DistributedRobustPtas::DistributedRobustPtas(const Graph& h,
                                             DistributedPtasConfig cfg)
    : h_(h),
      cfg_(cfg),
      exact_(cfg.bnb_node_cap, /*reuse_scratch=*/cfg.use_decision_cache),
      scratch_(h.size()) {
  MHCA_ASSERT(cfg_.r >= 1, "r must be at least 1");
  MHCA_ASSERT(cfg_.max_mini_rounds >= 0, "negative mini-round budget");
  if (cfg_.use_decision_cache) cache_ = NeighborhoodCache(h, cfg_.r);
}

int DistributedRobustPtas::ball_size(int v, int radius) {
  if (cache_.built()) {
    if (radius == cfg_.r) return cache_.r_ball_size(v);
    if (radius == 2 * cfg_.r + 1) return cache_.election_ball_size(v);
  }
  auto& sizes = ball_size_cache_[radius];
  if (sizes.empty()) sizes.assign(static_cast<std::size_t>(h_.size()), -1);
  int& s = sizes[static_cast<std::size_t>(v)];
  if (s < 0) {
    std::vector<int> ball;
    scratch_.k_hop_neighborhood(h_, v, radius, ball);
    s = static_cast<int>(ball.size());
  }
  return s;
}

std::int64_t DistributedRobustPtas::weight_broadcast_messages(
    std::span<const int> prev_winners) {
  std::int64_t msgs = 0;
  for (int v : prev_winners) msgs += ball_size(v, 2 * cfg_.r + 1);
  return msgs;
}

void DistributedRobustPtas::elect_by_relaxation(
    std::span<const double> weights, const std::vector<VertexStatus>& status,
    std::vector<int>& leaders) {
  const int n = h_.size();
  const int election_hops = 2 * cfg_.r + 1;
  relax_.resize(static_cast<std::size_t>(n));
  relax_next_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    relax_[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate
            ? key_of(v, weights)
            : kMinKey;
  for (int step = 0; step < election_hops; ++step) {
    for (int v = 0; v < n; ++v) {
      Key best = relax_[static_cast<std::size_t>(v)];
      for (int u : h_.neighbors(v))
        best = std::max(best, relax_[static_cast<std::size_t>(u)]);
      relax_next_[static_cast<std::size_t>(v)] = best;
    }
    std::swap(relax_, relax_next_);
  }
  for (int v = 0; v < n; ++v) {
    if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
      continue;
    if (relax_[static_cast<std::size_t>(v)] == key_of(v, weights))
      leaders.push_back(v);
  }
}

void DistributedRobustPtas::elect_by_cache(
    std::span<const double> weights, const std::vector<VertexStatus>& status,
    std::vector<int>& leaders) {
  const int n = h_.size();
  for (int v = 0; v < n; ++v) {
    if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
      continue;
    const double wv = weights[static_cast<std::size_t>(v)];
    bool is_leader = true;
    for (int u : cache_.election_ball(v)) {
      if (status[static_cast<std::size_t>(u)] != VertexStatus::kCandidate)
        continue;
      // key_of(u) > key_of(v) without materializing the pairs.
      const double wu = weights[static_cast<std::size_t>(u)];
      if (wu > wv || (wu == wv && u < v)) {
        is_leader = false;
        break;
      }
    }
    if (is_leader) leaders.push_back(v);
  }
}

DistributedPtasResult DistributedRobustPtas::run(
    std::span<const double> weights) {
  const int n = h_.size();
  MHCA_ASSERT(static_cast<int>(weights.size()) == n, "weight vector mismatch");
  const int r = cfg_.r;
  const int election_hops = 2 * r + 1;

  std::vector<VertexStatus> status(static_cast<std::size_t>(n),
                                   VertexStatus::kCandidate);
  int candidates = n;

  DistributedPtasResult res;
  std::vector<int> ball;
  std::vector<int> local_cands;
  std::vector<int> leaders;

  MwisSolver& local_solver =
      cfg_.local_solver == LocalSolverKind::kExact
          ? static_cast<MwisSolver&>(exact_)
          : static_cast<MwisSolver&>(greedy_);

  int mini_round = 0;
  while (candidates > 0 &&
         (cfg_.max_mini_rounds == 0 || mini_round < cfg_.max_mini_rounds)) {
    ++mini_round;
    MiniRoundRecord rec;
    rec.mini_round = mini_round;

    // --- LocalLeader selection (LS): max over the (2r+1)-hop ball. ---
    leaders.clear();
    if (cache_.built()) {
      elect_by_cache(weights, status, leaders);
    } else {
      elect_by_relaxation(weights, status, leaders);
    }
    MHCA_ASSERT(!leaders.empty(),
                "a candidate of globally maximal weight must elect itself");
    rec.leaders = static_cast<int>(leaders.size());

    // --- Local MWIS + status determination (LMWIS / LB). ---
    for (int leader : leaders) {
      std::span<const int> leader_ball;
      if (cache_.built()) {
        leader_ball = cache_.r_ball(leader);
      } else {
        scratch_.k_hop_neighborhood(h_, leader, r, ball);
        leader_ball = ball;
      }
      local_cands.clear();
      for (int v : leader_ball)
        if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate)
          local_cands.push_back(v);
      const MwisResult local = local_solver.solve(h_, weights, local_cands);
      res.solver_nodes_explored += local.nodes_explored;
      // Winners first, then every remaining candidate in the ball loses.
      for (int v : local.vertices) {
        status[static_cast<std::size_t>(v)] = VertexStatus::kWinner;
        res.winners.push_back(v);
        res.weight += weights[static_cast<std::size_t>(v)];
        --candidates;
        ++rec.new_winners;
      }
      for (int v : local_cands) {
        if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate) {
          status[static_cast<std::size_t>(v)] = VertexStatus::kLoser;
          --candidates;
          ++rec.new_losers;
        }
      }
      // Mirror the centralized PTAS's removal rule: every Candidate
      // adjacent to a fresh Winner becomes a Loser, even if it lies just
      // outside A_r (at distance r+1 from the leader). Without this, a
      // later mini-round could crown a winner conflicting with this one.
      for (int w : local.vertices) {
        for (int u : h_.neighbors(w)) {
          if (status[static_cast<std::size_t>(u)] == VertexStatus::kCandidate) {
            status[static_cast<std::size_t>(u)] = VertexStatus::kLoser;
            --candidates;
            ++rec.new_losers;
          }
        }
      }
      if (cfg_.count_messages) {
        rec.messages += ball_size(leader, election_hops);  // LD flood
        rec.messages += ball_size(leader, 3 * r + 2);      // LB flood
      }
    }

    rec.candidates_remaining = candidates;
    rec.cumulative_weight = res.weight;
    res.total_messages += rec.messages;
    // LS takes 2r+1 mini-timeslots, LB 3r+2 (§IV-C gives 3r+1 for marks at
    // distance <= r; winner-adjacent losers sit one hop further out).
    res.total_mini_timeslots += (2 * r + 1) + (3 * r + 2);
    res.mini_rounds.push_back(rec);
  }

  res.mini_rounds_used = mini_round;
  res.all_marked = candidates == 0;
  std::sort(res.winners.begin(), res.winners.end());
  MHCA_ASSERT(h_.is_independent_set(res.winners),
              "distributed PTAS produced a conflicting strategy");
  return res;
}

}  // namespace mhca
