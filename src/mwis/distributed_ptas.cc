#include "mwis/distributed_ptas.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "util/assert.h"
#include "util/parallel.h"

namespace mhca {
namespace {

/// Election key: (weight, -id) lexicographic, so higher weight wins and the
/// lower id breaks exact ties deterministically.
using Key = std::pair<double, int>;

Key key_of(int v, std::span<const double> w) {
  return {w[static_cast<std::size_t>(v)], -v};
}

constexpr Key kMinKey{-std::numeric_limits<double>::infinity(),
                      std::numeric_limits<int>::min()};

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

DistributedRobustPtas::DistributedRobustPtas(const Graph& h,
                                             DistributedPtasConfig cfg)
    : h_(h),
      cfg_(cfg),
      exact_(cfg.bnb_node_cap),  // solves go through solve_with_scratch
      scratch_(h.size()) {
  MHCA_ASSERT(cfg_.r >= 1, "r must be at least 1");
  MHCA_ASSERT(cfg_.max_mini_rounds >= 0, "negative mini-round budget");
  MHCA_ASSERT(cfg_.local_solve_parallelism >= 0, "negative parallelism");
  if (cfg_.use_decision_cache)
    cache_ = NeighborhoodCache(h, cfg_.r, cfg_.use_memoized_covers);
}

int DistributedRobustPtas::ball_size(int v, int radius) {
  if (cache_.built()) {
    if (radius == cfg_.r) return cache_.r_ball_size(v);
    if (radius == 2 * cfg_.r + 1) return cache_.election_ball_size(v);
  }
  auto& sizes = ball_size_cache_[radius];
  if (sizes.empty()) sizes.assign(static_cast<std::size_t>(h_.size()), -1);
  int& s = sizes[static_cast<std::size_t>(v)];
  if (s < 0) {
    std::vector<int> ball;
    scratch_.k_hop_neighborhood(h_, v, radius, ball);
    s = static_cast<int>(ball.size());
  }
  return s;
}

std::int64_t DistributedRobustPtas::weight_broadcast_messages(
    std::span<const int> prev_winners) {
  std::int64_t msgs = 0;
  for (int v : prev_winners) msgs += ball_size(v, 2 * cfg_.r + 1);
  return msgs;
}

void DistributedRobustPtas::elect_by_relaxation(
    std::span<const double> weights, const std::vector<VertexStatus>& status,
    std::vector<int>& leaders) {
  const int n = h_.size();
  const int election_hops = 2 * cfg_.r + 1;
  relax_.resize(static_cast<std::size_t>(n));
  relax_next_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    relax_[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate
            ? key_of(v, weights)
            : kMinKey;
  for (int step = 0; step < election_hops; ++step) {
    for (int v = 0; v < n; ++v) {
      Key best = relax_[static_cast<std::size_t>(v)];
      for (int u : h_.neighbors(v))
        best = std::max(best, relax_[static_cast<std::size_t>(u)]);
      relax_next_[static_cast<std::size_t>(v)] = best;
    }
    std::swap(relax_, relax_next_);
  }
  for (int v = 0; v < n; ++v) {
    if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
      continue;
    if (relax_[static_cast<std::size_t>(v)] == key_of(v, weights))
      leaders.push_back(v);
  }
}

void DistributedRobustPtas::elect_by_cache(
    std::span<const double> weights, const std::vector<VertexStatus>& status,
    std::vector<int>& leaders) {
  const int n = h_.size();
  for (int v = 0; v < n; ++v) {
    if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
      continue;
    const double wv = weights[static_cast<std::size_t>(v)];
    bool is_leader = true;
    for (int u : cache_.election_ball(v)) {
      if (status[static_cast<std::size_t>(u)] != VertexStatus::kCandidate)
        continue;
      // key_of(u) > key_of(v) without materializing the pairs.
      const double wu = weights[static_cast<std::size_t>(u)];
      if (wu > wv || (wu == wv && u < v)) {
        is_leader = false;
        break;
      }
    }
    if (is_leader) leaders.push_back(v);
  }
}

void DistributedRobustPtas::gather_local_instances(
    const std::vector<int>& leaders, const std::vector<VertexStatus>& status) {
  gather_cands_.clear();
  gather_cover_ids_.clear();
  gather_offsets_.clear();
  gather_cover_counts_.assign(leaders.size(), 0);
  gather_offsets_.reserve(leaders.size() + 1);
  gather_offsets_.push_back(0);
  for (std::size_t li = 0; li < leaders.size(); ++li) {
    const int leader = leaders[li];
    std::span<const int> ball;
    std::span<const int> ball_cover;
    if (cache_.built()) {
      ball = cache_.r_ball(leader);
      if (cfg_.use_memoized_covers) {
        ball_cover = cache_.r_ball_cover(leader);
        gather_cover_counts_[li] = cache_.r_ball_clique_count(leader);
      }
    } else {
      scratch_.k_hop_neighborhood(h_, leader, cfg_.r, ball_buf_);
      ball = ball_buf_;
      if (cfg_.use_memoized_covers) {
        // Seed path: rebuild the (weight-free, deterministic) ball cover the
        // cache would have memoized — identical ids by construction.
        gather_cover_counts_[li] =
            NeighborhoodCache::build_ball_cover(h_, ball, cover_buf_);
        ball_cover = cover_buf_;
      }
    }
    for (std::size_t i = 0; i < ball.size(); ++i) {
      const int v = ball[i];
      if (status[static_cast<std::size_t>(v)] != VertexStatus::kCandidate)
        continue;
      gather_cands_.push_back(v);
      if (cfg_.use_memoized_covers) gather_cover_ids_.push_back(ball_cover[i]);
    }
    gather_offsets_.push_back(gather_cands_.size());
  }
}

void DistributedRobustPtas::solve_local_instances(
    const std::vector<int>& leaders, std::span<const double> weights) {
  solve_results_.resize(leaders.size());
  const auto instance = [&](std::size_t li) {
    return std::span<const int>(gather_cands_)
        .subspan(gather_offsets_[li],
                 gather_offsets_[li + 1] - gather_offsets_[li]);
  };

  if (cfg_.local_solver == LocalSolverKind::kGreedy) {
    for (std::size_t li = 0; li < leaders.size(); ++li)
      solve_results_[li] = greedy_.solve(h_, weights, instance(li));
    return;
  }

  const auto solve_one = [&](std::size_t li, SolveScratch& scratch,
                             bool cached_path) {
    BnbSolveOptions opts;
    opts.use_adjacency_rows = cached_path;
    if (cfg_.use_memoized_covers) {
      opts.cand_clique_ids =
          std::span<const int>(gather_cover_ids_)
              .subspan(gather_offsets_[li],
                       gather_offsets_[li + 1] - gather_offsets_[li]);
      opts.clique_id_bound = gather_cover_counts_[li];
    }
    solve_results_[li] =
        exact_.solve_with_scratch(h_, weights, instance(li), scratch, opts);
  };

  if (!cache_.built()) {
    // Seed path: allocate fresh working memory per solve, list-scan build.
    for (std::size_t li = 0; li < leaders.size(); ++li) {
      SolveScratch fresh;
      solve_one(li, fresh, /*cached_path=*/false);
    }
    return;
  }

  int workers = cfg_.local_solve_parallelism;
  if (workers == 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers == 0) workers = 1;
  }
  workers = std::min<int>(workers, static_cast<int>(leaders.size()));
  if (static_cast<std::size_t>(workers) > worker_scratch_.size())
    worker_scratch_.resize(static_cast<std::size_t>(workers));
  if (workers <= 1) {
    for (std::size_t li = 0; li < leaders.size(); ++li)
      solve_one(li, worker_scratch_[0], /*cached_path=*/true);
    return;
  }
  // Strided fan-out: worker j owns leaders j, j+W, ... with its own scratch.
  // Output slots are disjoint, so any schedule yields identical results.
  parallel_run(
      workers,
      [&](int j) {
        for (std::size_t li = static_cast<std::size_t>(j);
             li < leaders.size(); li += static_cast<std::size_t>(workers))
          solve_one(li, worker_scratch_[static_cast<std::size_t>(j)],
                    /*cached_path=*/true);
      },
      workers);
}

void DistributedRobustPtas::on_graph_delta(std::span<const int> touched) {
  ball_size_cache_.clear();
  if (cache_.built()) cache_.apply_delta(h_, touched);
}

DistributedPtasResult DistributedRobustPtas::run(
    std::span<const double> weights, std::span<const char> active) {
  const int n = h_.size();
  MHCA_ASSERT(static_cast<int>(weights.size()) == n, "weight vector mismatch");
  MHCA_ASSERT(active.empty() || static_cast<int>(active.size()) == n,
              "activity mask mismatch");
  const int r = cfg_.r;
  const int election_hops = 2 * r + 1;
  const bool timed = cfg_.collect_stage_times;

  std::vector<VertexStatus> status(static_cast<std::size_t>(n),
                                   VertexStatus::kCandidate);
  int candidates = n;
  if (!active.empty()) {
    for (int v = 0; v < n; ++v) {
      if (!active[static_cast<std::size_t>(v)]) {
        status[static_cast<std::size_t>(v)] = VertexStatus::kLoser;
        --candidates;
      }
    }
  }

  DistributedPtasResult res;
  std::vector<int> leaders;

  int mini_round = 0;
  while (candidates > 0 &&
         (cfg_.max_mini_rounds == 0 || mini_round < cfg_.max_mini_rounds)) {
    ++mini_round;
    MiniRoundRecord rec;
    rec.mini_round = mini_round;

    // --- LocalLeader selection (LS): max over the (2r+1)-hop ball. ---
    auto t0 = Clock::now();
    leaders.clear();
    if (cache_.built()) {
      elect_by_cache(weights, status, leaders);
    } else {
      elect_by_relaxation(weights, status, leaders);
    }
    MHCA_ASSERT(!leaders.empty(),
                "a candidate of globally maximal weight must elect itself");
    rec.leaders = static_cast<int>(leaders.size());
    if (timed) stage_times_.election_ms += ms_since(t0);

    // --- Local MWIS (LMWIS): gather instances, then solve. Leaders' balls
    // are pairwise disjoint and non-adjacent (Theorem 3), so no leader's
    // verdict can change another's instance: gathering everything up front
    // and fanning the solves out is equivalent to the sequential protocol.
    if (timed) t0 = Clock::now();
    gather_local_instances(leaders, status);
    if (timed) {
      stage_times_.gather_ms += ms_since(t0);
      t0 = Clock::now();
    }
    solve_local_instances(leaders, weights);
    if (timed) {
      stage_times_.solve_ms += ms_since(t0);
      t0 = Clock::now();
    }

    // --- Status determination (LB), applied in election order. ---
    for (std::size_t li = 0; li < leaders.size(); ++li) {
      const int leader = leaders[li];
      const MwisResult& local = solve_results_[li];
      res.solver_nodes_explored += local.nodes_explored;
      if (cfg_.local_solver == LocalSolverKind::kExact && !local.exact)
        res.all_local_solves_exact = false;
      // Winners first, then every remaining candidate in the ball loses.
      for (int v : local.vertices) {
        status[static_cast<std::size_t>(v)] = VertexStatus::kWinner;
        res.winners.push_back(v);
        res.weight += weights[static_cast<std::size_t>(v)];
        --candidates;
        ++rec.new_winners;
      }
      const auto cands_begin = gather_offsets_[li];
      const auto cands_end = gather_offsets_[li + 1];
      for (std::size_t ci = cands_begin; ci < cands_end; ++ci) {
        const int v = gather_cands_[ci];
        if (status[static_cast<std::size_t>(v)] == VertexStatus::kCandidate) {
          status[static_cast<std::size_t>(v)] = VertexStatus::kLoser;
          --candidates;
          ++rec.new_losers;
        }
      }
      // Mirror the centralized PTAS's removal rule: every Candidate
      // adjacent to a fresh Winner becomes a Loser, even if it lies just
      // outside A_r (at distance r+1 from the leader). Without this, a
      // later mini-round could crown a winner conflicting with this one.
      for (int w : local.vertices) {
        for (int u : h_.neighbors(w)) {
          if (status[static_cast<std::size_t>(u)] == VertexStatus::kCandidate) {
            status[static_cast<std::size_t>(u)] = VertexStatus::kLoser;
            --candidates;
            ++rec.new_losers;
          }
        }
      }
      if (cfg_.count_messages) {
        rec.messages += ball_size(leader, election_hops);  // LD flood
        rec.messages += ball_size(leader, 3 * r + 2);      // LB flood
      }
    }
    if (timed) stage_times_.apply_ms += ms_since(t0);

    rec.candidates_remaining = candidates;
    rec.cumulative_weight = res.weight;
    res.total_messages += rec.messages;
    // LS takes 2r+1 mini-timeslots, LB 3r+2 (§IV-C gives 3r+1 for marks at
    // distance <= r; winner-adjacent losers sit one hop further out).
    res.total_mini_timeslots += (2 * r + 1) + (3 * r + 2);
    res.mini_rounds.push_back(rec);
  }

  res.mini_rounds_used = mini_round;
  res.all_marked = candidates == 0;
  std::sort(res.winners.begin(), res.winners.end());
  MHCA_ASSERT(h_.is_independent_set(res.winners),
              "distributed PTAS produced a conflicting strategy");
  return res;
}

}  // namespace mhca
