#include "mwis/greedy.h"

#include <algorithm>

namespace mhca {

MwisResult GreedyMwisSolver::solve(const Graph& g,
                                   std::span<const double> weights,
                                   std::span<const int> candidates) {
  std::vector<int> order(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double wa = weights[static_cast<std::size_t>(a)];
    const double wb = weights[static_cast<std::size_t>(b)];
    if (wa != wb) return wa > wb;
    return a < b;
  });
  MwisResult res;
  res.exact = false;
  for (int v : order) {
    ++res.nodes_explored;
    bool ok = true;
    for (int u : res.vertices) {
      if (g.has_edge(u, v)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      res.vertices.push_back(v);
      res.weight += weights[static_cast<std::size_t>(v)];
    }
  }
  std::sort(res.vertices.begin(), res.vertices.end());
  return res;
}

}  // namespace mhca
