#include "mwis/brute_force.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca {

MwisResult BruteForceMwisSolver::solve(const Graph& g,
                                       std::span<const double> weights,
                                       std::span<const int> candidates) {
  MHCA_ASSERT(static_cast<int>(candidates.size()) <= max_vertices_,
              "brute force limited to small instances");
  std::vector<int> cands(candidates.begin(), candidates.end());
  std::sort(cands.begin(), cands.end());

  const std::size_t n = cands.size();
  MwisResult best;
  best.weight = 0.0;
  // Adjacency masks among candidates.
  std::vector<std::uint32_t> adj(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && g.has_edge(cands[i], cands[j]))
        adj[i] |= (1u << j);

  const std::uint32_t limit = n >= 32 ? 0xffffffffu
                                      : ((1u << n) - 1u);
  for (std::uint32_t mask = 0;; ++mask) {
    ++best.nodes_explored;
    bool independent = true;
    double w = 0.0;
    for (std::size_t i = 0; i < n && independent; ++i) {
      if (!(mask & (1u << i))) continue;
      if (adj[i] & mask) independent = false;
      else w += weights[static_cast<std::size_t>(cands[i])];
    }
    if (independent && w > best.weight) {
      best.weight = w;
      best.vertices.clear();
      for (std::size_t i = 0; i < n; ++i)
        if (mask & (1u << i)) best.vertices.push_back(cands[i]);
    }
    if (mask == limit) break;
  }
  best.exact = true;
  return best;
}

}  // namespace mhca
