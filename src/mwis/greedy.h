// Greedy MWIS heuristic.
#pragma once

#include "mwis/mwis.h"

namespace mhca {

/// Scan vertices by decreasing weight (ties by id) and keep every vertex
/// not conflicting with an already-kept one. On growth-bounded graphs this
/// is a constant-factor approximation — the paper (§IV-C) notes it as the
/// practical replacement for local enumeration.
class GreedyMwisSolver : public MwisSolver {
 public:
  std::string name() const override { return "greedy"; }

  MwisResult solve(const Graph& g, std::span<const double> weights,
                   std::span<const int> candidates) override;
};

}  // namespace mhca
