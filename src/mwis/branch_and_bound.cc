#include "mwis/branch_and_bound.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/assert.h"

namespace mhca {
namespace {

/// One in-flight solve over caller-owned scratch buffers. Local vertex ids
/// are 0..n-1 (sorted original ids), adjacency as n bitset rows for O(n/64)
/// conflict checks.
class Search {
 public:
  Search(const Graph& g, std::span<const double> weights,
         std::span<const int> candidates, std::int64_t cap, SolveScratch& s,
         bool use_adjacency_rows)
      : s_(s), cap_(cap) {
    s_.cands.assign(candidates.begin(), candidates.end());
    std::sort(s_.cands.begin(), s_.cands.end());
    MHCA_ASSERT(std::adjacent_find(s_.cands.begin(), s_.cands.end()) ==
                    s_.cands.end(),
                "duplicate candidates");
    n_ = s_.cands.size();
    s_.w.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      MHCA_ASSERT(s_.cands[i] >= 0 && s_.cands[i] < g.size(),
                  "candidate out of range");
      s_.w[i] = weights[static_cast<std::size_t>(s_.cands[i])];
    }
    blocks_ = (n_ + 63) / 64;
    s_.adj.assign(n_ * blocks_, 0);
    if (use_adjacency_rows && g.has_adjacency_matrix()) {
      build_adjacency_from_rows(g);
    } else {
      build_adjacency_from_lists(g);
    }
  }

  MwisResult run() {
    build_order();
    build_clique_cover();
    seed_with_greedy();
    s_.chosen_mask.assign(blocks_, 0);
    s_.chosen.clear();
    cur_weight_ = 0.0;
    aborted_ = false;
    dfs(0);

    MwisResult res;
    res.vertices.reserve(s_.best_set.size());
    for (std::size_t i : s_.best_set) res.vertices.push_back(s_.cands[i]);
    std::sort(res.vertices.begin(), res.vertices.end());
    res.weight = best_weight_;
    res.exact = !aborted_;
    res.nodes_explored = explored_;
    return res;
  }

 private:
  /// Seed path: scan each candidate's (typically short) neighbor list
  /// against the sorted candidate array.
  void build_adjacency_from_lists(const Graph& g) {
    for (std::size_t i = 0; i < n_; ++i) {
      for (int u : g.neighbors(s_.cands[i])) {
        const auto it =
            std::lower_bound(s_.cands.begin(), s_.cands.end(), u);
        if (it != s_.cands.end() && *it == u) {
          const auto j = static_cast<std::size_t>(it - s_.cands.begin());
          s_.adj[i * blocks_ + j / 64] |= (std::uint64_t{1} << (j % 64));
        }
      }
    }
  }

  /// Fast path: mask each candidate's packed adjacency row with the global
  /// candidate bitset, then remap surviving bits to local ids. Stale
  /// `global_to_local` entries from earlier solves are harmless — only ids
  /// whose `cand_mask` bit was set *this* build are ever looked up.
  void build_adjacency_from_rows(const Graph& g) {
    const std::size_t gb = g.row_blocks();
    s_.cand_mask.assign(gb, 0);
    if (s_.global_to_local.size() < static_cast<std::size_t>(g.size()))
      s_.global_to_local.resize(static_cast<std::size_t>(g.size()));
    for (std::size_t i = 0; i < n_; ++i) {
      const auto gi = static_cast<std::size_t>(s_.cands[i]);
      s_.cand_mask[gi / 64] |= (std::uint64_t{1} << (gi % 64));
      s_.global_to_local[gi] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const auto row = g.adjacency_row(s_.cands[i]);
      std::uint64_t* out = &s_.adj[i * blocks_];
      for (std::size_t b = 0; b < gb; ++b) {
        std::uint64_t word = row[b] & s_.cand_mask[b];
        while (word != 0) {
          const auto gu = b * 64 + static_cast<std::size_t>(
                                       std::countr_zero(word));
          const auto j = static_cast<std::size_t>(s_.global_to_local[gu]);
          out[j / 64] |= (std::uint64_t{1} << (j % 64));
          word &= word - 1;
        }
      }
    }
  }

  bool conflicts_with_chosen(std::size_t v) const {
    const std::uint64_t* row = &s_.adj[v * blocks_];
    for (std::size_t b = 0; b < blocks_; ++b)
      if (row[b] & s_.chosen_mask[b]) return true;
    return false;
  }

  /// Weight-descending (ties by local id) order shared by the clique cover
  /// and the greedy incumbent.
  void build_order() {
    s_.order.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) s_.order[i] = i;
    std::sort(s_.order.begin(), s_.order.end(),
              [&](std::size_t a, std::size_t b) {
                if (s_.w[a] != s_.w[b]) return s_.w[a] > s_.w[b];
                return a < b;
              });
  }

  /// Greedy clique cover: visit vertices by weight desc; place each into the
  /// first clique it is fully adjacent to, else open a new clique. On the
  /// extended conflict graph this recovers (refinements of) the per-master
  /// channel cliques. Inner vectors of `s_.cliques` are recycled across
  /// solves; only the first `num_cliques_` are meaningful.
  void build_clique_cover() {
    num_cliques_ = 0;
    auto& cliques = s_.cliques;
    for (std::size_t v : s_.order) {
      bool placed = false;
      for (std::size_t qi = 0; qi < num_cliques_; ++qi) {
        auto& q = cliques[qi];
        bool all_adjacent = true;
        for (std::size_t u : q) {
          if (!(s_.adj[v * blocks_ + u / 64] &
                (std::uint64_t{1} << (u % 64)))) {
            all_adjacent = false;
            break;
          }
        }
        if (all_adjacent) {
          q.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) {
        if (num_cliques_ == cliques.size()) cliques.emplace_back();
        cliques[num_cliques_].clear();
        cliques[num_cliques_].push_back(v);
        ++num_cliques_;
      }
    }
    // Members are already weight-descending (insertion order). Sort cliques
    // by their max weight descending so the bound tightens early.
    std::sort(cliques.begin(),
              cliques.begin() + static_cast<std::ptrdiff_t>(num_cliques_),
              [&](const auto& a, const auto& b) {
                if (s_.w[a.front()] != s_.w[b.front()])
                  return s_.w[a.front()] > s_.w[b.front()];
                return a.front() < b.front();
              });
    // Suffix sums of per-clique maxima: remaining[i] bounds any completion
    // of a partial solution that has settled cliques 0..i-1.
    s_.remaining.assign(num_cliques_ + 1, 0.0);
    for (std::size_t i = num_cliques_; i-- > 0;)
      s_.remaining[i] = s_.remaining[i + 1] + s_.w[cliques[i].front()];
  }

  void seed_with_greedy() {
    s_.greedy_mask.assign(blocks_, 0);
    s_.best_set.clear();
    best_weight_ = 0.0;
    for (std::size_t v : s_.order) {
      const std::uint64_t* row = &s_.adj[v * blocks_];
      bool ok = true;
      for (std::size_t b = 0; b < blocks_; ++b)
        if (row[b] & s_.greedy_mask[b]) {
          ok = false;
          break;
        }
      if (ok) {
        s_.greedy_mask[v / 64] |= (std::uint64_t{1} << (v % 64));
        s_.best_set.push_back(v);
        best_weight_ += s_.w[v];
      }
    }
  }

  void dfs(std::size_t ci) {
    if (aborted_) return;
    if (++explored_ > cap_) {
      aborted_ = true;
      return;
    }
    if (ci == num_cliques_) {
      if (cur_weight_ > best_weight_) {
        best_weight_ = cur_weight_;
        s_.best_set = s_.chosen;
      }
      return;
    }
    if (cur_weight_ + s_.remaining[ci] <= best_weight_) return;  // bound
    bool rest_pruned = false;
    for (std::size_t v : s_.cliques[ci]) {
      // Members are weight-descending: once cur + w[v] + UB(rest) cannot
      // beat the incumbent, neither can any later (lighter) member — and,
      // for w[v] >= 0, neither can leaving the clique empty.
      if (cur_weight_ + s_.w[v] + s_.remaining[ci + 1] <= best_weight_) {
        rest_pruned = s_.w[v] >= 0.0;
        break;
      }
      if (conflicts_with_chosen(v)) continue;
      s_.chosen_mask[v / 64] |= (std::uint64_t{1} << (v % 64));
      s_.chosen.push_back(v);
      cur_weight_ += s_.w[v];
      dfs(ci + 1);
      cur_weight_ -= s_.w[v];
      s_.chosen.pop_back();
      s_.chosen_mask[v / 64] &= ~(std::uint64_t{1} << (v % 64));
      if (aborted_) return;
    }
    if (!rest_pruned) dfs(ci + 1);  // leave this clique empty
  }

  SolveScratch& s_;
  std::size_t n_ = 0;
  std::size_t blocks_ = 0;
  std::size_t num_cliques_ = 0;

  double cur_weight_ = 0.0;
  double best_weight_ = 0.0;

  std::int64_t explored_ = 0;
  std::int64_t cap_;
  bool aborted_ = false;
};

}  // namespace

MwisResult BranchAndBoundMwisSolver::solve_with_scratch(
    const Graph& g, std::span<const double> weights,
    std::span<const int> candidates, SolveScratch& scratch,
    bool use_adjacency_rows) const {
  if (candidates.empty()) return MwisResult{};
  Search s(g, weights, candidates, node_cap_, scratch, use_adjacency_rows);
  return s.run();
}

MwisResult BranchAndBoundMwisSolver::solve(const Graph& g,
                                           std::span<const double> weights,
                                           std::span<const int> candidates) {
  if (!reuse_scratch_) {
    SolveScratch fresh;  // seed behavior: allocate per solve, list-scan build
    return solve_with_scratch(g, weights, candidates, fresh,
                              /*use_adjacency_rows=*/false);
  }
  return solve_with_scratch(g, weights, candidates, scratch_);
}

}  // namespace mhca
