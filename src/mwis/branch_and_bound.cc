#include "mwis/branch_and_bound.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/assert.h"

namespace mhca {
namespace {

/// One in-flight solve over caller-owned scratch buffers. Local vertex ids
/// are 0..n-1 (sorted original ids), adjacency as n bitset rows for O(n/64)
/// conflict checks.
///
/// Hosts both search modes (see branch_and_bound.h): `run_classic` is the
/// seed algorithm, kept for solver-level baselines and equivalence tests;
/// `run_enhanced` adds reductions, component decomposition, conflict
/// counters and the refined bound stack.
class Search {
 public:
  Search(const Graph& g, std::span<const double> weights,
         std::span<const int> candidates, std::int64_t cap, SolveScratch& s,
         const BnbSolveOptions& opts)
      : s_(s), opts_(opts), cap_(cap) {
    if (!opts_.cand_clique_ids.empty()) {
      MHCA_ASSERT(opts_.enhanced, "memoized covers require the enhanced search");
      MHCA_ASSERT(opts_.cand_clique_ids.size() == candidates.size(),
                  "clique-id span must align with candidates");
      MHCA_ASSERT(std::is_sorted(candidates.begin(), candidates.end()),
                  "memoized covers require sorted candidates");
    }
    s_.cands.assign(candidates.begin(), candidates.end());
    std::sort(s_.cands.begin(), s_.cands.end());
    MHCA_ASSERT(std::adjacent_find(s_.cands.begin(), s_.cands.end()) ==
                    s_.cands.end(),
                "duplicate candidates");
    n_ = s_.cands.size();
    s_.w.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      MHCA_ASSERT(s_.cands[i] >= 0 && s_.cands[i] < g.size(),
                  "candidate out of range");
      s_.w[i] = weights[static_cast<std::size_t>(s_.cands[i])];
    }
    blocks_ = (n_ + 63) / 64;
    s_.adj.assign(n_ * blocks_, 0);
    if (opts_.use_adjacency_rows && g.has_adjacency_matrix()) {
      build_adjacency_from_rows(g);
    } else if (opts_.use_adjacency_rows && g.has_sparse_rows()) {
      build_adjacency_from_sparse_rows(g);
    } else {
      build_adjacency_from_lists(g);
    }
  }

  MwisResult run() {
    MwisResult res = opts_.enhanced ? run_enhanced() : run_classic();
    std::sort(res.vertices.begin(), res.vertices.end());
    res.exact = !aborted_;
    res.nodes_explored = explored_;
    return res;
  }

 private:
  static constexpr std::uint8_t kActive = 0;
  static constexpr std::uint8_t kExcluded = 1;
  static constexpr std::uint8_t kTaken = 2;
  static constexpr std::uint8_t kFolded = 3;

  // ---------------------------------------------------------------- build

  /// Seed path: scan each candidate's (typically short) neighbor list
  /// against the sorted candidate array.
  void build_adjacency_from_lists(const Graph& g) {
    for (std::size_t i = 0; i < n_; ++i) {
      for (int u : g.neighbors(s_.cands[i])) {
        const auto it =
            std::lower_bound(s_.cands.begin(), s_.cands.end(), u);
        if (it != s_.cands.end() && *it == u) {
          const auto j = static_cast<std::size_t>(it - s_.cands.begin());
          s_.adj[i * blocks_ + j / 64] |= (std::uint64_t{1} << (j % 64));
        }
      }
    }
  }

  /// Fast path: mask each candidate's packed adjacency row with the global
  /// candidate bitset, then remap surviving bits to local ids. Stale
  /// `global_to_local` entries from earlier solves are harmless — only ids
  /// whose `cand_mask` bit was set *this* build are ever looked up.
  void build_adjacency_from_rows(const Graph& g) {
    const std::size_t gb = g.row_blocks();
    s_.cand_mask.assign(gb, 0);
    if (s_.global_to_local.size() < static_cast<std::size_t>(g.size()))
      s_.global_to_local.resize(static_cast<std::size_t>(g.size()));
    for (std::size_t i = 0; i < n_; ++i) {
      const auto gi = static_cast<std::size_t>(s_.cands[i]);
      s_.cand_mask[gi / 64] |= (std::uint64_t{1} << (gi % 64));
      s_.global_to_local[gi] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const auto row = g.adjacency_row(s_.cands[i]);
      std::uint64_t* out = &s_.adj[i * blocks_];
      for (std::size_t b = 0; b < gb; ++b) {
        std::uint64_t word = row[b] & s_.cand_mask[b];
        while (word != 0) {
          const auto gu = b * 64 + static_cast<std::size_t>(
                                       std::countr_zero(word));
          const auto j = static_cast<std::size_t>(s_.global_to_local[gu]);
          out[j / 64] |= (std::uint64_t{1} << (j % 64));
          word &= word - 1;
        }
      }
    }
  }

  /// Sharded fast path (n beyond the dense-matrix limit): mask each
  /// candidate's stored nonzero blocks against a full-width candidate
  /// bitset and remap the surviving bits to local ids — O(row blocks) per
  /// row, exactly the dense gather restricted to the blocks that exist.
  void build_adjacency_from_sparse_rows(const Graph& g) {
    const std::size_t gb = (static_cast<std::size_t>(g.size()) + 63) / 64;
    s_.cand_mask.assign(gb, 0);
    if (s_.global_to_local.size() < static_cast<std::size_t>(g.size()))
      s_.global_to_local.resize(static_cast<std::size_t>(g.size()));
    for (std::size_t i = 0; i < n_; ++i) {
      const auto gi = static_cast<std::size_t>(s_.cands[i]);
      s_.cand_mask[gi / 64] |= (std::uint64_t{1} << (gi % 64));
      s_.global_to_local[gi] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const auto row_blocks = g.sparse_row_blocks(s_.cands[i]);
      const auto row_words = g.sparse_row_words(s_.cands[i]);
      std::uint64_t* out = &s_.adj[i * blocks_];
      for (std::size_t k = 0; k < row_blocks.size(); ++k) {
        const auto b = static_cast<std::size_t>(row_blocks[k]);
        std::uint64_t word = row_words[k] & s_.cand_mask[b];
        while (word != 0) {
          const auto gu = b * 64 + static_cast<std::size_t>(
                                       std::countr_zero(word));
          const auto j = static_cast<std::size_t>(s_.global_to_local[gu]);
          out[j / 64] |= (std::uint64_t{1} << (j % 64));
          word &= word - 1;
        }
      }
    }
  }

  bool adjacent(std::size_t v, std::size_t u) const {
    return (s_.adj[v * blocks_ + u / 64] & (std::uint64_t{1} << (u % 64))) !=
           0;
  }

  /// Weight-descending (ties by local id) order shared by the clique cover
  /// and the greedy incumbent. `active_only` restricts to post-reduction
  /// survivors.
  void build_order(bool active_only) {
    s_.order.clear();
    for (std::size_t i = 0; i < n_; ++i)
      if (!active_only || s_.vstate[i] == kActive) s_.order.push_back(i);
    std::sort(s_.order.begin(), s_.order.end(),
              [&](std::size_t a, std::size_t b) {
                if (s_.w[a] != s_.w[b]) return s_.w[a] > s_.w[b];
                return a < b;
              });
  }

  // -------------------------------------------------------------- classic

  MwisResult run_classic() {
    build_order(/*active_only=*/false);
    build_clique_cover_greedy();
    sort_cliques_and_suffix(0, num_cliques_, /*sentinel=*/true,
                            /*clamp_negative_maxima=*/false);
    seed_with_greedy();
    s_.chosen_mask.assign(blocks_, 0);
    s_.chosen.clear();
    cur_weight_ = 0.0;
    dfs_classic(0);

    MwisResult res;
    res.vertices.reserve(s_.best_set.size());
    for (std::size_t i : s_.best_set) res.vertices.push_back(s_.cands[i]);
    res.weight = best_weight_;
    return res;
  }

  bool conflicts_with_chosen(std::size_t v) const {
    const std::uint64_t* row = &s_.adj[v * blocks_];
    for (std::size_t b = 0; b < blocks_; ++b)
      if (row[b] & s_.chosen_mask[b]) return true;
    return false;
  }

  /// Greedy clique cover: visit vertices of `order` by weight desc; place
  /// each into the first clique it is fully adjacent to, else open a new
  /// clique. On the extended conflict graph this recovers (refinements of)
  /// the per-master channel cliques. Inner vectors of `s_.cliques` are
  /// recycled across solves; only the first `num_cliques_` are meaningful.
  void build_clique_cover_greedy() {
    num_cliques_ = 0;
    auto& cliques = s_.cliques;
    for (std::size_t v : s_.order) {
      bool placed = false;
      for (std::size_t qi = 0; qi < num_cliques_; ++qi) {
        auto& q = cliques[qi];
        bool all_adjacent = true;
        for (std::size_t u : q) {
          if (!adjacent(v, u)) {
            all_adjacent = false;
            break;
          }
        }
        if (all_adjacent) {
          q.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) {
        if (num_cliques_ == cliques.size()) cliques.emplace_back();
        cliques[num_cliques_].clear();
        cliques[num_cliques_].push_back(v);
        ++num_cliques_;
      }
    }
  }

  /// Sort cliques [begin, end) by their max weight descending so the bound
  /// tightens early (members are already weight-descending), then fill
  /// `remaining` with suffix sums of per-clique maxima over that range:
  /// remaining[i] bounds any completion of a partial solution that has
  /// settled cliques begin..i-1 of the range. With `sentinel`,
  /// remaining[end] is written as 0 (the classic search reads it).
  /// `clamp_negative_maxima` floors each clique's contribution at 0 — a
  /// completion may always leave a clique empty, so a negative max must not
  /// drag the bound below what is achievable; the classic search keeps the
  /// seed's unclamped arithmetic (the paper's index weights are positive).
  void sort_cliques_and_suffix(std::size_t begin, std::size_t end,
                               bool sentinel, bool clamp_negative_maxima) {
    auto& cliques = s_.cliques;
    std::sort(cliques.begin() + static_cast<std::ptrdiff_t>(begin),
              cliques.begin() + static_cast<std::ptrdiff_t>(end),
              [&](const auto& a, const auto& b) {
                if (s_.w[a.front()] != s_.w[b.front()])
                  return s_.w[a.front()] > s_.w[b.front()];
                return a.front() < b.front();
              });
    if (s_.remaining.size() < end + 1) s_.remaining.resize(end + 1);
    if (sentinel) s_.remaining[end] = 0.0;
    for (std::size_t i = end; i-- > begin;) {
      double top = s_.w[cliques[i].front()];
      if (clamp_negative_maxima && top < 0.0) top = 0.0;
      s_.remaining[i] = (i + 1 < end ? s_.remaining[i + 1] : 0.0) + top;
    }
  }

  /// One masked weight-descending greedy pass over `s_.order`: every taken
  /// vertex is marked in `greedy_mask` and handed to `take`. The single
  /// scan serves the classic incumbent, the enhanced anytime backstop, and
  /// the per-group incumbents — one place for the tie-handling and the
  /// negative-weight cutoff. `skip_negative` is off on the classic path
  /// (seed behavior, positive-weight domain).
  template <typename Take>
  void greedy_scan(bool skip_negative, Take&& take) {
    s_.greedy_mask.assign(blocks_, 0);
    for (std::size_t v : s_.order) {
      if (skip_negative && s_.w[v] < 0.0) break;  // order is weight-desc
      const std::uint64_t* row = &s_.adj[v * blocks_];
      bool ok = true;
      for (std::size_t b = 0; b < blocks_; ++b)
        if (row[b] & s_.greedy_mask[b]) {
          ok = false;
          break;
        }
      if (ok) {
        s_.greedy_mask[v / 64] |= (std::uint64_t{1} << (v % 64));
        take(v);
      }
    }
  }

  void seed_with_greedy() {
    s_.best_set.clear();
    best_weight_ = 0.0;
    greedy_scan(/*skip_negative=*/false, [&](std::size_t v) {
      s_.best_set.push_back(v);
      best_weight_ += s_.w[v];
    });
  }

  void dfs_classic(std::size_t ci) {
    if (aborted_) return;
    if (++explored_ > cap_) {
      aborted_ = true;
      return;
    }
    if (ci == num_cliques_) {
      if (cur_weight_ > best_weight_) {
        best_weight_ = cur_weight_;
        s_.best_set = s_.chosen;
      }
      return;
    }
    if (cur_weight_ + s_.remaining[ci] <= best_weight_) return;  // bound
    bool rest_pruned = false;
    for (std::size_t v : s_.cliques[ci]) {
      // Members are weight-descending: once cur + w[v] + UB(rest) cannot
      // beat the incumbent, neither can any later (lighter) member — and,
      // for w[v] >= 0, neither can leaving the clique empty.
      if (cur_weight_ + s_.w[v] + s_.remaining[ci + 1] <= best_weight_) {
        rest_pruned = s_.w[v] >= 0.0;
        break;
      }
      if (conflicts_with_chosen(v)) continue;
      s_.chosen_mask[v / 64] |= (std::uint64_t{1} << (v % 64));
      s_.chosen.push_back(v);
      cur_weight_ += s_.w[v];
      dfs_classic(ci + 1);
      cur_weight_ -= s_.w[v];
      s_.chosen.pop_back();
      s_.chosen_mask[v / 64] &= ~(std::uint64_t{1} << (v % 64));
      if (aborted_) return;
    }
    if (!rest_pruned) dfs_classic(ci + 1);  // leave this clique empty
  }

  // ------------------------------------------------------------- enhanced

  MwisResult run_enhanced() {
    // Full-instance greedy backstop, computed on the untouched instance so
    // the anytime contract (result >= greedy) survives reductions + abort.
    build_order(/*active_only=*/false);
    s_.fallback_set.clear();
    double fallback_w = 0.0;
    greedy_scan(/*skip_negative=*/true, [&](std::size_t v) {
      s_.fallback_set.push_back(v);
      fallback_w += s_.w[v];
    });

    s_.vstate.assign(n_, kActive);
    s_.forced.clear();
    s_.folds.clear();
    base_weight_ = 0.0;
    std::size_t removed = 0;
    if (opts_.use_reductions) {
      reduce();
      for (std::size_t i = 0; i < n_; ++i)
        if (s_.vstate[i] != kActive) ++removed;
    }

    // First-mini-round balls rarely reduce at all; reuse the full order
    // (same contents, weights untouched by any fold) instead of re-sorting.
    if (removed != 0) build_order(/*active_only=*/true);
    label_components();
    if (!opts_.cand_clique_ids.empty()) {
      build_clique_cover_memoized();
    } else {
      build_clique_cover_greedy();  // order is active-only here
    }
    group_cliques_by_component();
    seed_groups_with_greedy();

    // Independent DFS per component: subtree sizes add up instead of
    // multiplying. Groups after an abort keep their greedy incumbents.
    s_.conflict_cnt.assign(n_, 0);
    s_.chosen.clear();
    for (std::size_t g = 0; g < num_groups_ && !aborted_; ++g) {
      cur_group_end_ = s_.group_end[g];
      best_w_ = &s_.group_best_w[g];
      best_out_ = &s_.group_best[g];
      cur_weight_ = 0.0;
      dfs_enhanced(s_.group_begin[g]);
    }

    // Assemble: forced takes + per-group bests, then unfold in reverse
    // (a folded vertex joins whenever its kept neighbor stayed out; its
    // weight is already in base_weight_ either way).
    double total = base_weight_;
    s_.chosen_mask.assign(blocks_, 0);
    auto mark = [&](std::size_t v) {
      s_.chosen_mask[v / 64] |= (std::uint64_t{1} << (v % 64));
    };
    auto marked = [&](std::size_t v) {
      return (s_.chosen_mask[v / 64] & (std::uint64_t{1} << (v % 64))) != 0;
    };
    s_.best_set.clear();
    for (std::size_t v : s_.forced) {
      s_.best_set.push_back(v);
      mark(v);
    }
    for (std::size_t g = 0; g < num_groups_; ++g) {
      total += s_.group_best_w[g];
      for (std::size_t v : s_.group_best[g]) {
        s_.best_set.push_back(v);
        mark(v);
      }
    }
    for (std::size_t i = s_.folds.size(); i-- > 0;) {
      const auto [kept, folded] = s_.folds[i];
      if (!marked(kept)) {
        s_.best_set.push_back(folded);
        mark(folded);
      }
    }
    if (fallback_w > total) {  // only reachable after a node-cap abort
      s_.best_set = s_.fallback_set;
      total = fallback_w;
      // Fallback weights are the originals: recompute from pre-fold values
      // is unnecessary — folds only fire with use_reductions, and the
      // fallback sum was taken before any fold mutated s_.w.
    }

    MwisResult res;
    res.vertices.reserve(s_.best_set.size());
    for (std::size_t i : s_.best_set) res.vertices.push_back(s_.cands[i]);
    res.weight = total;
    return res;
  }

  /// Exactness-preserving preprocessing on the local instance. Rules:
  ///   non-positive drop  w[v] <= 0 never improves a solution; remove.
  ///   isolated take      deg 0, w >= 0: some optimum contains v.
  ///   degree-1 take      deg(v) = 1 with neighbor u, w[v] >= w[u]: swap
  ///                      u -> v in any optimum; take v, drop u.
  ///   degree-1 fold      deg(v) = 1, 0 < w[v] < w[u]: v is in the optimum
  ///                      iff u is not. Remove v, charge w[v] to the base,
  ///                      set w[u] -= w[v]; reconstruction re-adds v when
  ///                      u stays out.
  ///   dominance          adjacent u, v with N(v)\{u} ⊆ N(u)\{v} and
  ///                      w[v] >= w[u]: any optimum holding u may swap to
  ///                      v; remove u.
  /// Removals physically clear bits from surviving rows, so every later
  /// stage (cover, components, DFS) sees only live vertices. FIFO worklist
  /// keeps the outcome deterministic.
  void reduce() {
    auto& deg = s_.degree;
    deg.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      int d = 0;
      for (std::size_t b = 0; b < blocks_; ++b)
        d += std::popcount(s_.adj[i * blocks_ + b]);
      deg[i] = d;
    }
    auto& queue = s_.worklist;
    queue.clear();
    for (std::size_t i = 0; i < n_; ++i) queue.push_back(static_cast<int>(i));

    auto enqueue = [&](std::size_t v) { queue.push_back(static_cast<int>(v)); };
    // Detach x from the live instance: clear its bit from every live
    // neighbor's row and requeue them (their degree changed).
    auto detach = [&](std::size_t x) {
      for (std::size_t b = 0; b < blocks_; ++b) {
        std::uint64_t word = s_.adj[x * blocks_ + b];
        while (word != 0) {
          const std::size_t t =
              b * 64 + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          if (s_.vstate[t] != kActive) continue;
          s_.adj[t * blocks_ + x / 64] &= ~(std::uint64_t{1} << (x % 64));
          --deg[t];
          enqueue(t);
        }
      }
    };
    auto exclude = [&](std::size_t x) {
      s_.vstate[x] = kExcluded;
      detach(x);
    };
    auto take = [&](std::size_t x) {
      s_.vstate[x] = kTaken;
      s_.forced.push_back(x);
      base_weight_ += s_.w[x];
      for (std::size_t b = 0; b < blocks_; ++b) {
        std::uint64_t word = s_.adj[x * blocks_ + b];
        while (word != 0) {
          const std::size_t u =
              b * 64 + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          if (s_.vstate[u] == kActive) exclude(u);
        }
      }
    };

    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const auto x = static_cast<std::size_t>(queue[qi]);
      if (s_.vstate[x] != kActive) continue;
      if (s_.w[x] <= 0.0) {
        // Dropping a zero-weight vertex keeps the optimal *weight* exact.
        exclude(x);
        continue;
      }
      if (deg[x] == 0) {
        take(x);
        continue;
      }
      if (deg[x] == 1) {
        std::size_t u = 0;
        for (std::size_t b = 0; b < blocks_; ++b) {
          const std::uint64_t word = s_.adj[x * blocks_ + b];
          if (word != 0) {
            u = b * 64 + static_cast<std::size_t>(std::countr_zero(word));
            break;
          }
        }
        if (s_.w[x] >= s_.w[u]) {
          exclude(u);
          take(x);  // x is isolated once u is gone
        } else {
          s_.folds.emplace_back(u, x);
          base_weight_ += s_.w[x];
          s_.w[u] -= s_.w[x];
          s_.vstate[x] = kFolded;
          s_.adj[u * blocks_ + x / 64] &= ~(std::uint64_t{1} << (x % 64));
          --deg[u];
          enqueue(u);  // u's degree and weight both changed
        }
        continue;
      }
      // Dominance by a live neighbor v: N(v)\{x} ⊆ N(x)\{v} and
      // w[v] >= w[x]. Row check: bits of v not in x's row must be {x}.
      bool removed = false;
      for (std::size_t b = 0; b < blocks_ && !removed; ++b) {
        std::uint64_t word = s_.adj[x * blocks_ + b];
        while (word != 0) {
          const std::size_t v =
              b * 64 + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          if (s_.w[v] < s_.w[x]) continue;
          bool subset = true;
          for (std::size_t bb = 0; bb < blocks_; ++bb) {
            std::uint64_t extra =
                s_.adj[v * blocks_ + bb] & ~s_.adj[x * blocks_ + bb];
            if (bb == x / 64) extra &= ~(std::uint64_t{1} << (x % 64));
            if (extra != 0) {
              subset = false;
              break;
            }
          }
          if (subset) {
            exclude(x);
            removed = true;
            break;
          }
        }
      }
    }
  }

  /// Label live vertices with their connected component, in ascending
  /// discovery order (component ids are dense and deterministic).
  void label_components() {
    s_.comp.assign(n_, -1);
    num_groups_ = 0;
    auto& queue = s_.comp_queue;
    for (std::size_t i = 0; i < n_; ++i) {
      if (s_.vstate[i] != kActive || s_.comp[i] >= 0) continue;
      const int c = static_cast<int>(num_groups_++);
      queue.clear();
      queue.push_back(i);
      s_.comp[i] = c;
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const std::size_t v = queue[qi];
        for (std::size_t b = 0; b < blocks_; ++b) {
          std::uint64_t word = s_.adj[v * blocks_ + b];
          while (word != 0) {
            const std::size_t u =
                b * 64 + static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            if (s_.comp[u] < 0) {
              s_.comp[u] = c;
              queue.push_back(u);
            }
          }
        }
      }
    }
  }

  /// Rebuild the memoized cover restricted to live vertices: bucket by the
  /// caller-provided clique id, then weight-sort members. Restriction
  /// preserves validity (a subset of a clique is a clique) so the bound
  /// stays sound for any weights — only the partition is reused.
  void build_clique_cover_memoized() {
    num_cliques_ = 0;
    s_.qid_bucket.assign(static_cast<std::size_t>(opts_.clique_id_bound), -1);
    auto& cliques = s_.cliques;
    for (std::size_t i = 0; i < n_; ++i) {
      if (s_.vstate[i] != kActive) continue;
      const int qid = opts_.cand_clique_ids[i];
      MHCA_ASSERT(qid >= 0 && qid < opts_.clique_id_bound,
                  "clique id out of range");
      int& bucket = s_.qid_bucket[static_cast<std::size_t>(qid)];
      if (bucket < 0) {
        bucket = static_cast<int>(num_cliques_);
        if (num_cliques_ == cliques.size()) cliques.emplace_back();
        cliques[num_cliques_].clear();
        ++num_cliques_;
      }
      cliques[static_cast<std::size_t>(bucket)].push_back(i);
    }
    for (std::size_t qi = 0; qi < num_cliques_; ++qi)
      std::sort(cliques[qi].begin(), cliques[qi].end(),
                [&](std::size_t a, std::size_t b) {
                  if (s_.w[a] != s_.w[b]) return s_.w[a] > s_.w[b];
                  return a < b;
                });
  }

  /// Partition cliques into contiguous per-component ranges (a clique's
  /// members are pairwise adjacent, hence single-component) and build each
  /// range's suffix bound independently.
  void group_cliques_by_component() {
    auto& cliques = s_.cliques;
    std::sort(cliques.begin(),
              cliques.begin() + static_cast<std::ptrdiff_t>(num_cliques_),
              [&](const auto& a, const auto& b) {
                const int ca = s_.comp[a.front()];
                const int cb = s_.comp[b.front()];
                if (ca != cb) return ca < cb;
                if (s_.w[a.front()] != s_.w[b.front()])
                  return s_.w[a.front()] > s_.w[b.front()];
                return a.front() < b.front();
              });
    s_.group_begin.assign(num_groups_, 0);
    s_.group_end.assign(num_groups_, 0);
    std::size_t i = 0;
    for (std::size_t g = 0; g < num_groups_; ++g) {
      s_.group_begin[g] = i;
      while (i < num_cliques_ &&
             s_.comp[cliques[i].front()] == static_cast<int>(g))
        ++i;
      s_.group_end[g] = i;
      sort_cliques_and_suffix(s_.group_begin[g], s_.group_end[g],
                              /*sentinel=*/false,
                              /*clamp_negative_maxima=*/true);
      compute_pair_deductions(s_.group_begin[g], s_.group_end[g]);
    }
    MHCA_ASSERT(i == num_cliques_, "clique grouping lost a clique");
  }

  /// Pairwise tightening of the suffix bound: greedily match cliques of
  /// [begin, end) whose top (max-weight) members conflict — such a pair can
  /// never realize both tops, so min(top - second) of the two cliques comes
  /// off the additive bound. Pairs are formed scanning from the back, so
  /// every pair lies inside each suffix that starts at or before its first
  /// clique: pair_deduct[i] is a sound deduction for remaining[i]. O(1) to
  /// apply per DFS node.
  void compute_pair_deductions(std::size_t begin, std::size_t end) {
    if (s_.pair_deduct.size() < end + 1) s_.pair_deduct.resize(end + 1);
    auto& cliques = s_.cliques;
    auto& matched = s_.pair_matched;
    matched.assign(end - begin, 0);
    // Contributions are floored at 0 (see sort_cliques_and_suffix), so the
    // drop from losing a clique's top is to its best *nonnegative*
    // runner-up, and cliques with non-positive tops contribute nothing —
    // they are skipped below.
    const auto gap = [&](std::size_t q) {
      const auto& c = cliques[q];
      const double second = c.size() > 1 ? s_.w[c[1]] : 0.0;
      return s_.w[c.front()] - (second > 0.0 ? second : 0.0);
    };
    for (std::size_t i = end; i-- > begin;) {
      double deduct = i + 1 < end ? s_.pair_deduct[i + 1] : 0.0;
      if (!matched[i - begin] && s_.w[cliques[i].front()] > 0.0) {
        double best_pair = 0.0;
        std::size_t best_j = end;
        for (std::size_t j = i + 1; j < end; ++j) {
          if (matched[j - begin]) continue;
          if (s_.w[cliques[j].front()] <= 0.0) continue;
          if (!adjacent(cliques[i].front(), cliques[j].front())) continue;
          const double d = std::min(gap(i), gap(j));
          if (d > best_pair) {
            best_pair = d;
            best_j = j;
          }
        }
        if (best_j != end) {
          matched[i - begin] = 1;
          matched[best_j - begin] = 1;
          deduct += best_pair;
        }
      }
      s_.pair_deduct[i] = deduct;
    }
  }

  /// Greedy incumbent per component: one weight-descending pass over the
  /// live vertices; each taken vertex lands in its component's incumbent.
  /// Components are independent, so this equals per-component greedy.
  void seed_groups_with_greedy() {
    s_.group_best_w.assign(num_groups_, 0.0);
    while (s_.group_best.size() < num_groups_) s_.group_best.emplace_back();
    for (std::size_t g = 0; g < num_groups_; ++g) s_.group_best[g].clear();
    greedy_scan(/*skip_negative=*/true, [&](std::size_t v) {
      const auto g = static_cast<std::size_t>(s_.comp[v]);
      s_.group_best[g].push_back(v);
      s_.group_best_w[g] += s_.w[v];
    });
  }


  /// Residual refinement of the clique-cover bound: walk the remaining
  /// cliques of the group replacing each static max by its heaviest member
  /// with no chosen neighbor (its residual availability). Aborts as soon as
  /// the partial sum alone shows no prune is possible, so the common case
  /// stays cheap.
  bool refined_bound_prunes(std::size_t ci) const {
    if (s_.chosen.empty()) return false;  // no conflicts: equals static bound
    double partial = cur_weight_;
    for (std::size_t j = ci; j < cur_group_end_; ++j) {
      if (partial > *best_w_) return false;  // refinement cannot prune
      if (partial + s_.remaining[j] - s_.pair_deduct[j] <= *best_w_)
        return true;
      for (std::size_t u : s_.cliques[j]) {
        if (s_.conflict_cnt[u] == 0) {
          if (s_.w[u] > 0.0) partial += s_.w[u];  // may leave clique empty
          break;
        }
      }
    }
    return partial <= *best_w_;
  }

  void bump_neighbors(std::size_t v, int delta) {
    for (std::size_t b = 0; b < blocks_; ++b) {
      std::uint64_t word = s_.adj[v * blocks_ + b];
      while (word != 0) {
        const std::size_t u =
            b * 64 + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        s_.conflict_cnt[u] += delta;
      }
    }
  }

  void dfs_enhanced(std::size_t ci) {
    if (aborted_) return;
    if (++explored_ > cap_) {
      aborted_ = true;
      return;
    }
    if (ci == cur_group_end_) {
      if (cur_weight_ > *best_w_) {
        *best_w_ = cur_weight_;
        *best_out_ = s_.chosen;
      }
      return;
    }
    if (cur_weight_ + s_.remaining[ci] - s_.pair_deduct[ci] <= *best_w_)
      return;  // static clique bound, pair-corrected
    if (refined_bound_prunes(ci)) return;
    const double rem_next = ci + 1 < cur_group_end_
                                ? s_.remaining[ci + 1] - s_.pair_deduct[ci + 1]
                                : 0.0;
    bool rest_pruned = false;
    for (std::size_t v : s_.cliques[ci]) {
      // Members are weight-descending: once cur + w[v] + UB(rest) cannot
      // beat the incumbent, neither can any later (lighter) member — and,
      // for w[v] >= 0, neither can leaving the clique empty.
      if (cur_weight_ + s_.w[v] + rem_next <= *best_w_) {
        rest_pruned = s_.w[v] >= 0.0;
        break;
      }
      if (s_.conflict_cnt[v] != 0) continue;
      s_.chosen.push_back(v);
      cur_weight_ += s_.w[v];
      bump_neighbors(v, 1);
      dfs_enhanced(ci + 1);
      bump_neighbors(v, -1);
      cur_weight_ -= s_.w[v];
      s_.chosen.pop_back();
      if (aborted_) return;
    }
    if (!rest_pruned) dfs_enhanced(ci + 1);  // leave this clique empty
  }

  SolveScratch& s_;
  const BnbSolveOptions& opts_;
  std::size_t n_ = 0;
  std::size_t blocks_ = 0;
  std::size_t num_cliques_ = 0;
  std::size_t num_groups_ = 0;

  double cur_weight_ = 0.0;
  double best_weight_ = 0.0;  ///< Classic-search incumbent.
  double base_weight_ = 0.0;  ///< Weight settled by reductions.

  // Enhanced search: incumbent of the component group being searched.
  std::size_t cur_group_end_ = 0;
  double* best_w_ = nullptr;
  std::vector<std::size_t>* best_out_ = nullptr;

  std::int64_t explored_ = 0;
  std::int64_t cap_;
  bool aborted_ = false;
};

}  // namespace

MwisResult BranchAndBoundMwisSolver::solve_with_scratch(
    const Graph& g, std::span<const double> weights,
    std::span<const int> candidates, SolveScratch& scratch,
    const BnbSolveOptions& opts) const {
  if (candidates.empty()) return MwisResult{};
  Search s(g, weights, candidates, node_cap_, scratch, opts);
  return s.run();
}

MwisResult BranchAndBoundMwisSolver::solve(const Graph& g,
                                           std::span<const double> weights,
                                           std::span<const int> candidates) {
  if (!reuse_scratch_) {
    // Seed behavior: allocate per solve, list-scan adjacency build, classic
    // greedy-cover search.
    SolveScratch fresh;
    BnbSolveOptions seed_opts;
    seed_opts.use_adjacency_rows = false;
    seed_opts.enhanced = false;
    seed_opts.use_reductions = false;
    return solve_with_scratch(g, weights, candidates, fresh, seed_opts);
  }
  return solve_with_scratch(g, weights, candidates, scratch_);
}

}  // namespace mhca
