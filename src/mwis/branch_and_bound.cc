#include "mwis/branch_and_bound.h"

#include <algorithm>
#include <cstdint>

#include "util/assert.h"

namespace mhca {
namespace {

/// One in-flight solve. Local vertex ids are 0..n-1 (sorted original ids),
/// adjacency as n bitset rows for O(n/64) conflict checks.
class Search {
 public:
  Search(const Graph& g, std::span<const double> weights,
         std::span<const int> candidates, std::int64_t cap)
      : cap_(cap) {
    cands_.assign(candidates.begin(), candidates.end());
    std::sort(cands_.begin(), cands_.end());
    MHCA_ASSERT(std::adjacent_find(cands_.begin(), cands_.end()) ==
                    cands_.end(),
                "duplicate candidates");
    n_ = cands_.size();
    w_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      MHCA_ASSERT(cands_[i] >= 0 && cands_[i] < g.size(),
                  "candidate out of range");
      w_[i] = weights[static_cast<std::size_t>(cands_[i])];
    }
    blocks_ = (n_ + 63) / 64;
    adj_.assign(n_ * blocks_, 0);
    // Build local adjacency by scanning each candidate's (typically short)
    // neighbor list against the sorted candidate array.
    for (std::size_t i = 0; i < n_; ++i) {
      for (int u : g.neighbors(cands_[i])) {
        const auto it = std::lower_bound(cands_.begin(), cands_.end(), u);
        if (it != cands_.end() && *it == u) {
          const std::size_t j =
              static_cast<std::size_t>(it - cands_.begin());
          adj_[i * blocks_ + j / 64] |= (std::uint64_t{1} << (j % 64));
        }
      }
    }
  }

  MwisResult run() {
    build_clique_cover();
    seed_with_greedy();
    chosen_mask_.assign(blocks_, 0);
    chosen_.clear();
    cur_weight_ = 0.0;
    aborted_ = false;
    dfs(0);

    MwisResult res;
    res.vertices.reserve(best_set_.size());
    for (std::size_t i : best_set_) res.vertices.push_back(cands_[i]);
    std::sort(res.vertices.begin(), res.vertices.end());
    res.weight = best_weight_;
    res.exact = !aborted_;
    res.nodes_explored = explored_;
    return res;
  }

 private:
  bool conflicts_with_chosen(std::size_t v) const {
    const std::uint64_t* row = &adj_[v * blocks_];
    for (std::size_t b = 0; b < blocks_; ++b)
      if (row[b] & chosen_mask_[b]) return true;
    return false;
  }

  /// Greedy clique cover: visit vertices by weight desc; place each into the
  /// first clique it is fully adjacent to, else open a new clique. On the
  /// extended conflict graph this recovers (refinements of) the per-master
  /// channel cliques.
  void build_clique_cover() {
    std::vector<std::size_t> order(n_);
    for (std::size_t i = 0; i < n_; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (w_[a] != w_[b]) return w_[a] > w_[b];
      return a < b;
    });
    cliques_.clear();
    for (std::size_t v : order) {
      bool placed = false;
      for (auto& q : cliques_) {
        bool all_adjacent = true;
        for (std::size_t u : q) {
          if (!(adj_[v * blocks_ + u / 64] & (std::uint64_t{1} << (u % 64)))) {
            all_adjacent = false;
            break;
          }
        }
        if (all_adjacent) {
          q.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) cliques_.push_back({v});
    }
    // Members are already weight-descending (insertion order). Sort cliques
    // by their max weight descending so the bound tightens early.
    std::sort(cliques_.begin(), cliques_.end(),
              [&](const auto& a, const auto& b) {
                if (w_[a.front()] != w_[b.front()])
                  return w_[a.front()] > w_[b.front()];
                return a.front() < b.front();
              });
    // Suffix sums of per-clique maxima: remaining_[i] bounds any completion
    // of a partial solution that has settled cliques 0..i-1.
    remaining_.assign(cliques_.size() + 1, 0.0);
    for (std::size_t i = cliques_.size(); i-- > 0;)
      remaining_[i] = remaining_[i + 1] + w_[cliques_[i].front()];
  }

  void seed_with_greedy() {
    std::vector<std::size_t> order(n_);
    for (std::size_t i = 0; i < n_; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (w_[a] != w_[b]) return w_[a] > w_[b];
      return a < b;
    });
    std::vector<std::uint64_t> mask(blocks_, 0);
    best_set_.clear();
    best_weight_ = 0.0;
    for (std::size_t v : order) {
      const std::uint64_t* row = &adj_[v * blocks_];
      bool ok = true;
      for (std::size_t b = 0; b < blocks_; ++b)
        if (row[b] & mask[b]) {
          ok = false;
          break;
        }
      if (ok) {
        mask[v / 64] |= (std::uint64_t{1} << (v % 64));
        best_set_.push_back(v);
        best_weight_ += w_[v];
      }
    }
  }

  void dfs(std::size_t ci) {
    if (aborted_) return;
    if (++explored_ > cap_) {
      aborted_ = true;
      return;
    }
    if (ci == cliques_.size()) {
      if (cur_weight_ > best_weight_) {
        best_weight_ = cur_weight_;
        best_set_ = chosen_;
      }
      return;
    }
    if (cur_weight_ + remaining_[ci] <= best_weight_) return;  // bound
    for (std::size_t v : cliques_[ci]) {
      if (conflicts_with_chosen(v)) continue;
      chosen_mask_[v / 64] |= (std::uint64_t{1} << (v % 64));
      chosen_.push_back(v);
      cur_weight_ += w_[v];
      dfs(ci + 1);
      cur_weight_ -= w_[v];
      chosen_.pop_back();
      chosen_mask_[v / 64] &= ~(std::uint64_t{1} << (v % 64));
      if (aborted_) return;
    }
    dfs(ci + 1);  // leave this clique empty
  }

  std::vector<int> cands_;
  std::vector<double> w_;
  std::size_t n_ = 0;
  std::size_t blocks_ = 0;
  std::vector<std::uint64_t> adj_;

  std::vector<std::vector<std::size_t>> cliques_;
  std::vector<double> remaining_;

  std::vector<std::uint64_t> chosen_mask_;
  std::vector<std::size_t> chosen_;
  double cur_weight_ = 0.0;

  std::vector<std::size_t> best_set_;
  double best_weight_ = 0.0;

  std::int64_t explored_ = 0;
  std::int64_t cap_;
  bool aborted_ = false;
};

}  // namespace

MwisResult BranchAndBoundMwisSolver::solve(const Graph& g,
                                           std::span<const double> weights,
                                           std::span<const int> candidates) {
  if (candidates.empty()) return MwisResult{};
  Search s(g, weights, candidates, node_cap_);
  return s.run();
}

}  // namespace mhca
