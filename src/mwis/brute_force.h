// Exhaustive MWIS solver (reference implementation for validation).
#pragma once

#include "mwis/mwis.h"

namespace mhca {

/// Plain include/exclude recursion with no pruning beyond feasibility.
/// Exponential — only for graphs of ~24 vertices or fewer (asserted).
/// Exists to cross-check the branch-and-bound solver in tests.
class BruteForceMwisSolver : public MwisSolver {
 public:
  explicit BruteForceMwisSolver(int max_vertices = 24)
      : max_vertices_(max_vertices) {}

  std::string name() const override { return "brute-force"; }

  MwisResult solve(const Graph& g, std::span<const double> weights,
                   std::span<const int> candidates) override;

 private:
  int max_vertices_;
};

}  // namespace mhca
